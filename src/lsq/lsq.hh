/**
 * @file
 * The load/store queue model.
 *
 * One class implements every design point of the paper:
 *
 *  - a conventional split LQ/SQ with N search ports (numSegments = 1);
 *  - the store-load pair predictor scheme: the core gates SQ searches
 *    per prediction and violation detection moves to store commit;
 *  - the load buffer: load-load ordering checks leave the LQ;
 *  - the segmented queue: per-segment ports, pipelined multi-segment
 *    searches, variable load latency, allocation policies, and the
 *    contention rule of Section 3.2.
 *
 * Three searches exist (Figure 1 of the paper):
 *  1. load execute  -> SQ  : youngest older matching store (forwarding)
 *  2. store (exec or commit) -> LQ : oldest younger premature load
 *     (store-load order violation)
 *  3. load execute  -> LQ or load buffer : younger same-address load
 *     issued out of order (load-load order violation)
 */

#ifndef LSQSCALE_LSQ_LSQ_HH
#define LSQSCALE_LSQ_LSQ_HH

#include <deque>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "lsq/load_buffer.hh"
#include "lsq/lsq_params.hh"
#include "lsq/port_schedule.hh"
#include "lsq/segment_allocator.hh"

namespace lsqscale {

class LsqChecker;
class Tracer;

/** Why a load could not issue this cycle. */
enum class LoadIssueStatus : std::uint8_t {
    Accepted,
    NoSqPort,       ///< no SQ search port free this cycle
    NoLqPort,       ///< no LQ search port free this cycle
    LoadBufferFull, ///< out-of-order load, load buffer full
    InOrderStall,   ///< in-order policy: an older load is non-issued
    Contention,     ///< future segment slot booked (squash & replay)
};

/** Result of a load issue attempt. */
struct LoadIssueOutcome
{
    LoadIssueStatus status = LoadIssueStatus::Accepted;

    bool searchedSq = false;
    bool forwarded = false;
    SeqNum forwardedFrom = kNoSeq;
    Pc forwardedFromPc = 0;

    /** Segments visited by the SQ forwarding search. */
    unsigned sqSegmentsVisited = 0;
    /** Cycle the (slower of the) searches completes. */
    Cycle searchDoneCycle = 0;
    /**
     * True when the load's latency is knowable at issue (head-segment
     * rule, Section 3): dependents keep early wakeup.
     */
    bool constantLatency = true;

    /**
     * Load-load order violations detected by this issue (the issuing
     * load's own search plus any deferred searches triggered by NILP
     * advancing). Values are the *violating* (younger) loads' seqs.
     */
    std::vector<SeqNum> llViolations;
};

/** Result of a store-initiated LQ search (execute- or commit-time). */
struct StoreSearchOutcome
{
    bool accepted = false;      ///< false: no port, retry next cycle
    bool contention = false;    ///< segmented: future slot booked
    SeqNum violationLoad = kNoSeq;
    Pc violationLoadPc = 0;
    unsigned segmentsVisited = 0;
    Cycle searchDoneCycle = 0;
};

/** The load/store queue. */
class Lsq
{
  public:
    Lsq(const LsqParams &params, StatSet &stats);

    // ------------------------------------------------ allocation -----
    bool canAllocateLoad() const { return loadAlloc().canAllocate(); }
    bool canAllocateStore() const
    {
        return storeAlloc().canAllocate();
    }
    void allocateLoad(SeqNum seq, Pc pc);
    void allocateStore(SeqNum seq, Pc pc);

    // ------------------------------------------------ oracle ---------
    /**
     * True if an older store with a valid matching address is in the
     * SQ. Used by the Perfect SQ-search policy and by tests.
     */
    bool olderMatchingStore(SeqNum loadSeq, Addr addr) const;

    /**
     * Store-set wait support: true if the store @p seq is still in the
     * SQ without a valid address (i.e. has not executed).
     */
    bool storePendingAddress(SeqNum seq) const;

    /**
     * Total-order baseline support: true if any store older than
     * @p loadSeq has not yet exposed its address.
     */
    bool anyOlderStoreUnaddressed(SeqNum loadSeq) const;

    // ------------------------------------------------ execution ------
    /**
     * Attempt to issue the load @p seq with effective address @p addr
     * at cycle @p now. @p wantSqSearch reflects the SQ-search policy
     * decision made by the core.
     */
    LoadIssueOutcome issueLoad(SeqNum seq, Addr addr, Cycle now,
                               bool wantSqSearch);

    /**
     * The store @p seq computed its address at cycle @p now. In the
     * conventional scheme this also performs the LQ violation search
     * (and can be rejected for lack of a port — retry next cycle).
     */
    StoreSearchOutcome storeAddrReady(SeqNum seq, Addr addr, Cycle now);

    /**
     * External invalidation (Section 2.2's "scheme 2", MIPS R10000
     * style): another processor wrote @p addr. Searches the LQ for
     * any outstanding load to that address; the caller squashes the
     * oldest match. Consumes an LQ search port (rejected when none is
     * free this cycle — the coherence controller retries).
     */
    StoreSearchOutcome invalidate(Addr addr, Cycle now);

    // ------------------------------------------------ commit ---------
    /**
     * Commit the store at the SQ head (must be @p seq). Performs the
     * commit-time LQ search when checkViolationsAtCommit is set; a
     * port shortfall rejects the commit (caller retries — "delaying
     * the commit of the store" per Section 3.2).
     */
    StoreSearchOutcome commitStore(SeqNum seq, Cycle now);

    /** Commit the load at the LQ head (must be @p seq). */
    void commitLoad(SeqNum seq);

    /**
     * Snapshot of the LQ-head load the core is about to commit:
     * feeds coherence-agent observation (memory/probe_agent.hh)
     * without widening commitLoad's interface.
     */
    struct CommittedLoadInfo
    {
        Addr addr = 0;
        Cycle executeCycle = kNoCycle;
        SeqNum forwardedFrom = kNoSeq;
    };
    CommittedLoadInfo
    headLoadInfo() const
    {
        LSQ_ASSERT(!lq_.empty(), "headLoadInfo on an empty LQ");
        const LoadEntry &e = lq_.front();
        return CommittedLoadInfo{e.addr, e.executeCycle,
                                 e.forwardedFrom};
    }

    // ------------------------------------------------ recovery -------
    /** Remove every entry with sequence number >= @p seq. */
    void squashFrom(SeqNum seq);

    // ------------------------------------------------ stats ----------
    /** Call once per cycle to sample occupancy histograms. */
    void sampleOccupancy();

    unsigned lqLive() const
    {
        return static_cast<unsigned>(lq_.size());
    }
    unsigned sqLive() const
    {
        return static_cast<unsigned>(sq_.size());
    }
    /** Live loads currently allocated to segment @p seg. */
    unsigned lqSegmentLive(unsigned seg) const
    {
        return loadAlloc().occupancy(seg);
    }
    /** Live stores currently allocated to segment @p seg. */
    unsigned sqSegmentLive(unsigned seg) const
    {
        return storeAlloc().occupancy(seg);
    }
    const LsqParams &params() const { return params_; }
    const LoadBuffer &loadBuffer() const { return lb_; }

    // ------------------------------------------------ checking -------
    /**
     * Attach a memory-ordering oracle (src/check/lsq_checker.hh): a
     * pure observer notified of every accepted state transition. The
     * hook sites cost one null-pointer test per LSQ event; compile
     * with -DLSQSCALE_NO_CHECK_HOOKS to strip even that. Pass nullptr
     * to detach. The checker must outlive this Lsq (or be detached).
     */
    void attachChecker(LsqChecker *checker) { checker_ = checker; }
    LsqChecker *checker() const { return checker_; }

    /**
     * Attach an event tracer (src/obs/trace.hh): a pure observer that
     * records search/forwarding/load-buffer events. Hook sites exist
     * only in -DLSQ_TRACE=ON builds (LSQ_TRACE_HOOK compiles to
     * nothing otherwise); when compiled in, each costs one
     * null-pointer test. Pass nullptr to detach. The tracer must
     * outlive this Lsq (or be detached).
     */
    void attachTracer(Tracer *tracer) { tracer_ = tracer; }
    Tracer *tracer() const { return tracer_; }

    // ------------------------------------------------ fault injection
    /**
     * Deterministically corrupt resident store-queue state: flip one
     * address bit in every store whose address is valid (the bit
     * position derives from @p seed). Models a latent datapath fault;
     * a -DLSQ_CHECKER build detects the divergence on the next
     * affected forwarding/ordering decision and panics with
     * provenance. @return false when no store had a valid address yet
     * (nothing corrupted — the injector retries next cycle).
     */
    bool injectStateCorruption(std::uint64_t seed);

    // ------------------------------------------------ checkpointing --
    /**
     * Serialize the drained-queue state (checkpointing,
     * docs/SAMPLING.md). Only legal when the queues are empty — a
     * checkpoint is taken at a quiesced pipeline — but the segment
     * allocators' rotation positions persist across the drain and are
     * captured here.
     */
    void saveState(SerialWriter &w) const;
    /** Restore state written by saveState (geometry must match). */
    void loadState(SerialReader &r);

  private:
    struct LoadEntry
    {
        SeqNum seq;
        Pc pc;
        unsigned segment;
        Addr addr = 0;
        bool executed = false;
        Cycle executeCycle = kNoCycle;
        SeqNum forwardedFrom = kNoSeq;
        bool wasOoo = false;
        bool passedByNilp = false;
    };

    struct StoreEntry
    {
        SeqNum seq;
        Pc pc;
        unsigned segment;
        Addr addr = 0;
        bool addrValid = false;
    };

    LoadEntry *findLoad(SeqNum seq);
    StoreEntry *findStore(SeqNum seq);
    const LoadEntry *oldestNonIssued() const;

    /**
     * Plan the SQ forwarding search for (@p loadSeq, @p addr): the
     * ordered list of distinct segments visited (youngest-older store
     * first, toward the head) and the match, if any.
     */
    struct SqSearchPlan
    {
        std::vector<unsigned> visit;
        const StoreEntry *match = nullptr;
        bool endsAtHead = false;   ///< search covered the oldest stores
    };
    SqSearchPlan planSqSearch(SeqNum loadSeq, Addr addr) const;

    /**
     * Plan a store's LQ violation search: segments of loads younger
     * than @p storeSeq (oldest first), stopping at the first violating
     * load.
     */
    struct LqSearchPlan
    {
        std::vector<unsigned> visit;
        const LoadEntry *violator = nullptr;
    };
    LqSearchPlan planStoreLqSearch(SeqNum storeSeq, Addr addr) const;

    /** Plan a load's own LQ load-load search (conventional scheme). */
    LqSearchPlan planLoadLqSearch(SeqNum loadSeq, Addr addr,
                                  Cycle executeCycle) const;

    /**
     * Advance the NILP past issued loads, releasing load-buffer
     * entries and running their deferred ordering searches.
     */
    void advanceNilp(LoadIssueOutcome &outcome, Cycle now);

    /** Allocator backing loads (shared in combined mode). */
    SegmentAllocator &loadAlloc() { return lqAlloc_; }
    const SegmentAllocator &loadAlloc() const { return lqAlloc_; }
    /** Allocator backing stores (shared in combined mode). */
    SegmentAllocator &
    storeAlloc()
    {
        return params_.combinedQueue ? lqAlloc_ : sqAlloc_;
    }
    const SegmentAllocator &
    storeAlloc() const
    {
        return params_.combinedQueue ? lqAlloc_ : sqAlloc_;
    }
    /** Port schedule for store-queue (forwarding) searches. */
    PortSchedule &
    sqPorts()
    {
        return params_.combinedQueue ? lqPorts_ : sqPorts_;
    }
    /** Port schedule for load-queue (ordering) searches. */
    PortSchedule &lqPorts() { return lqPorts_; }

    // lsqlint: no-serialize(construction config, fixed for the run)
    LsqParams params_;
    // lsqlint: no-serialize(measurement output, not architectural state)
    StatSet &stats_;

    std::deque<LoadEntry> lq_;
    std::deque<StoreEntry> sq_;
    SegmentAllocator lqAlloc_;
    SegmentAllocator sqAlloc_;
    // lsqlint: no-serialize(rolling reservation table; slots self-invalidate by cycle tag)
    PortSchedule lqPorts_;
    // lsqlint: no-serialize(rolling reservation table; slots self-invalidate by cycle tag)
    PortSchedule sqPorts_;
    LoadBuffer lb_;

    /** Live loads issued out of order and not yet passed by the NILP. */
    unsigned oooLive_ = 0;

    /** Attached ordering oracle, or nullptr (the common case). */
    // lsqlint: no-serialize(attached oracle, wired by the owning Simulator)
    LsqChecker *checker_ = nullptr;

    /** Attached event tracer, or nullptr (the common case). */
    // lsqlint: no-serialize(attached observer, wired by the owning Simulator)
    Tracer *tracer_ = nullptr;
};

} // namespace lsqscale

#endif // LSQSCALE_LSQ_LSQ_HH
