/**
 * @file
 * Per-segment, per-cycle search-port reservation.
 *
 * A segmented queue search occupies one segment in each consecutive
 * cycle (Section 3: searches pipeline through the segment chain). The
 * PortSchedule books those (segment, cycle) slots ahead of time so
 * conflicting searches are detected at initiation, implementing the
 * paper's contention rule: already-booked (earlier-initiated) searches
 * win; the newcomer is delayed or squashed by the caller.
 */

#ifndef LSQSCALE_LSQ_PORT_SCHEDULE_HH
#define LSQSCALE_LSQ_PORT_SCHEDULE_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lsqscale {

/** Rolling reservation table for one queue's segment ports. */
class PortSchedule
{
  public:
    PortSchedule(unsigned segments, unsigned portsPerSegment)
        : segments_(segments), ports_(portsPerSegment),
          slots_(segments * kWindow)
    {
        LSQ_ASSERT(segments >= 1, "PortSchedule needs >= 1 segment");
        LSQ_ASSERT(portsPerSegment >= 1, "PortSchedule needs >= 1 port");
    }

    /** Free ports at (segment, cycle). */
    unsigned
    freePorts(unsigned segment, Cycle cycle) const
    {
        const Slot &s = slot(segment, cycle);
        unsigned used = (s.cycle == cycle) ? s.used : 0;
        return used >= ports_ ? 0 : ports_ - used;
    }

    /**
     * Check that the walk visiting @p visitOrder[i] at cycle
     * @p start + i can be fully booked.
     */
    bool
    canReserveWalk(const std::vector<unsigned> &visitOrder,
                   Cycle start) const
    {
        for (std::size_t i = 0; i < visitOrder.size(); ++i)
            if (freePorts(visitOrder[i], start + i) == 0)
                return false;
        return true;
    }

    /** Book the walk. Caller must have checked canReserveWalk. */
    void
    reserveWalk(const std::vector<unsigned> &visitOrder, Cycle start)
    {
        for (std::size_t i = 0; i < visitOrder.size(); ++i)
            reserve(visitOrder[i], start + i);
    }

    /** Book a single (segment, cycle) slot. */
    void
    reserve(unsigned segment, Cycle cycle)
    {
        Slot &s = slot(segment, cycle);
        if (s.cycle != cycle) {
            s.cycle = cycle;
            s.used = 0;
        }
        LSQ_ASSERT(s.used < ports_, "overbooked segment %u cycle %llu",
                   segment, static_cast<unsigned long long>(cycle));
        ++s.used;
    }

    unsigned numSegments() const { return segments_; }
    unsigned portsPerSegment() const { return ports_; }

  private:
    struct Slot
    {
        Cycle cycle = kNoCycle;
        unsigned used = 0;
    };

    Slot &
    slot(unsigned segment, Cycle cycle)
    {
        return slots_[segment * kWindow + cycle % kWindow];
    }

    const Slot &
    slot(unsigned segment, Cycle cycle) const
    {
        return slots_[segment * kWindow + cycle % kWindow];
    }

    /**
     * Rolling window length. Searches span at most numSegments
     * consecutive cycles and numSegments <= 8 in every configuration
     * we model, so 16 cycles of lookahead is ample.
     */
    static constexpr unsigned kWindow = 16;

    unsigned segments_;
    unsigned ports_;
    std::vector<Slot> slots_;
};

} // namespace lsqscale

#endif // LSQSCALE_LSQ_PORT_SCHEDULE_HH
