#include "lsq/lsq.hh"

#include <algorithm>

#include "check/lsq_checker.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/trace.hh"

/**
 * Notify the attached ordering oracle (if any) of an accepted state
 * transition. Rejected operations never reach a hook: they leave the
 * queue untouched, so there is nothing to shadow. Define
 * LSQSCALE_NO_CHECK_HOOKS to compile the hooks out entirely.
 */
#if !defined(LSQSCALE_NO_CHECK_HOOKS)
#define LSQ_CHECK_HOOK(call)                                              \
    do {                                                                  \
        if (checker_ != nullptr)                                          \
            checker_->call;                                               \
    } while (0)
#else
#define LSQ_CHECK_HOOK(call)                                              \
    do {                                                                  \
    } while (0)
#endif

namespace lsqscale {

Lsq::Lsq(const LsqParams &params, StatSet &stats)
    : params_(params), stats_(stats),
      lqAlloc_(params.numSegments, params.lqEntries, params.allocPolicy),
      sqAlloc_(params.numSegments, params.sqEntries, params.allocPolicy),
      lqPorts_(params.numSegments, params.searchPorts),
      sqPorts_(params.numSegments, params.searchPorts),
      lb_(params.loadBufferEntries,
          params.loadCheck != LoadCheckPolicy::LoadBuffer)
{
    // Pre-create histograms with appropriately sized bucket ranges.
    stats_.histogram("lq.occupancy", params.totalLqEntries() + 2);
    stats_.histogram("sq.occupancy", params.totalSqEntries() + 2);
    stats_.histogram("ooo.inflight", 64);
    stats_.histogram("sq.search.segments", params.numSegments + 1);
}

// ---------------------------------------------------- allocation ------

// lsqlint: hot
void
Lsq::allocateLoad(SeqNum seq, Pc pc)
{
    LSQ_ASSERT(canAllocateLoad(), "LQ full");
    LSQ_ASSERT(lq_.empty() || lq_.back().seq < seq,
               "loads must allocate in program order");
    LoadEntry e;
    e.seq = seq;
    e.pc = pc;
    e.segment = loadAlloc().allocate();
    LSQ_DCHECK(e.segment < params_.numSegments,
               "segment index out of range");
    lq_.push_back(e);
    LSQ_CHECK_HOOK(onAllocateLoad(seq, pc));
}

// lsqlint: hot
void
Lsq::allocateStore(SeqNum seq, Pc pc)
{
    LSQ_ASSERT(canAllocateStore(), "SQ full");
    LSQ_ASSERT(sq_.empty() || sq_.back().seq < seq,
               "stores must allocate in program order");
    StoreEntry e;
    e.seq = seq;
    e.pc = pc;
    e.segment = storeAlloc().allocate();
    LSQ_DCHECK(e.segment < params_.numSegments,
               "segment index out of range");
    sq_.push_back(e);
    LSQ_CHECK_HOOK(onAllocateStore(seq, pc));
}

// ---------------------------------------------------- lookups ---------

Lsq::LoadEntry *
Lsq::findLoad(SeqNum seq)
{
    for (auto &e : lq_)
        if (e.seq == seq)
            return &e;
    return nullptr;
}

Lsq::StoreEntry *
Lsq::findStore(SeqNum seq)
{
    for (auto &e : sq_)
        if (e.seq == seq)
            return &e;
    return nullptr;
}

const Lsq::LoadEntry *
Lsq::oldestNonIssued() const
{
    for (const auto &e : lq_)
        if (!e.executed)
            return &e;
    return nullptr;
}

bool
Lsq::olderMatchingStore(SeqNum loadSeq, Addr addr) const
{
    for (const auto &s : sq_)
        if (s.seq < loadSeq && s.addrValid && s.addr == addr)
            return true;
    return false;
}

bool
Lsq::storePendingAddress(SeqNum seq) const
{
    for (const auto &s : sq_)
        if (s.seq == seq)
            return !s.addrValid;
    return false;
}

bool
Lsq::anyOlderStoreUnaddressed(SeqNum loadSeq) const
{
    for (const auto &s : sq_) {
        if (s.seq >= loadSeq)
            break;
        if (!s.addrValid)
            return true;
    }
    return false;
}

// ---------------------------------------------------- search plans ----

Lsq::SqSearchPlan
Lsq::planSqSearch(SeqNum loadSeq, Addr addr) const
{
    SqSearchPlan plan;
    // Walk stores from youngest-older toward the head; the search
    // pipeline advances one segment per cycle, so record the order of
    // distinct segments encountered.
    unsigned allOlderSegs = 0;
    {
        // Count distinct segments over *all* older stores: if they fit
        // in one segment the load's latency is knowable at issue
        // (head-segment rule).
        std::vector<unsigned> segs;
        for (const auto &s : sq_) {
            if (s.seq >= loadSeq)
                break;
            if (std::find(segs.begin(), segs.end(), s.segment) ==
                segs.end())
                segs.push_back(s.segment);
        }
        allOlderSegs = static_cast<unsigned>(segs.size());
    }
    plan.endsAtHead = allOlderSegs <= 1;

    for (auto it = sq_.rbegin(); it != sq_.rend(); ++it) {
        if (it->seq >= loadSeq)
            continue;
        if (std::find(plan.visit.begin(), plan.visit.end(),
                      it->segment) == plan.visit.end())
            plan.visit.push_back(it->segment);
        if (it->addrValid && it->addr == addr) {
            plan.match = &*it;
            break;
        }
    }
    if (plan.visit.empty())
        plan.visit.push_back(storeAlloc().tailSegment());
    return plan;
}

Lsq::LqSearchPlan
Lsq::planStoreLqSearch(SeqNum storeSeq, Addr addr) const
{
    LqSearchPlan plan;
    for (const auto &e : lq_) {
        if (e.seq <= storeSeq)
            continue;
        if (std::find(plan.visit.begin(), plan.visit.end(),
                      e.segment) == plan.visit.end())
            plan.visit.push_back(e.segment);
        bool stale = e.forwardedFrom == kNoSeq ||
                     e.forwardedFrom < storeSeq;
        if (e.executed && e.addr == addr && stale) {
            plan.violator = &e;
            break;
        }
    }
    if (plan.visit.empty())
        plan.visit.push_back(loadAlloc().tailSegment());
    return plan;
}

Lsq::LqSearchPlan
Lsq::planLoadLqSearch(SeqNum loadSeq, Addr addr,
                      Cycle executeCycle) const
{
    LqSearchPlan plan;
    unsigned ownSegment = loadAlloc().tailSegment();
    for (const auto &e : lq_) {
        if (e.seq == loadSeq)
            ownSegment = e.segment;
        if (e.seq <= loadSeq)
            continue;
        if (std::find(plan.visit.begin(), plan.visit.end(),
                      e.segment) == plan.visit.end())
            plan.visit.push_back(e.segment);
        if (e.executed && e.addr == addr &&
            e.executeCycle < executeCycle) {
            plan.violator = &e;
            break;
        }
    }
    if (plan.visit.empty())
        plan.visit.push_back(ownSegment);
    return plan;
}

// ---------------------------------------------------- load issue ------

void
Lsq::advanceNilp(LoadIssueOutcome &outcome, Cycle now)
{
    bool useLb = params_.loadCheck == LoadCheckPolicy::LoadBuffer;
    for (auto &e : lq_) {
        if (!e.executed)
            break;
        if (e.passedByNilp)
            continue;
        e.passedByNilp = true;
        if (!e.wasOoo)
            continue;
        LSQ_ASSERT(oooLive_ > 0, "oooLive underflow");
        LSQ_DCHECK(e.executeCycle != kNoCycle,
                   "NILP passed a load with no execute cycle");
        --oooLive_;
        if (useLb) {
            // Release the entry, then run the deferred ordering search
            // (Section 2.2.1: "at this time, the load relevant to the
            // LIV entry has to search the load buffer").
            lb_.release(e.seq);
            LSQ_TRACE_HOOK(tracer_, TraceEvent::LbRelease, now, e.seq,
                           e.addr);
            stats_.counter("lb.searches").inc();
            SeqNum v = lb_.findViolation(e.seq, e.addr, e.executeCycle);
            if (v != kNoSeq)
                outcome.llViolations.push_back(v);
        }
    }
#if !defined(LSQSCALE_TRACE)
    (void)now;
#endif
}

// lsqlint: hot
LoadIssueOutcome
Lsq::issueLoad(SeqNum seq, Addr addr, Cycle now, bool wantSqSearch)
{
    LoadIssueOutcome out;
    LoadEntry *e = findLoad(seq);
    LSQ_ASSERT(e != nullptr, "issueLoad: unknown load %llu",
               static_cast<unsigned long long>(seq));
    LSQ_ASSERT(!e->executed, "issueLoad: load issued twice");

    const LoadEntry *oldest = oldestNonIssued();
    bool isOldest = oldest && oldest->seq == seq;

    if (params_.inOrderLoads() && !isOldest) {
        out.status = LoadIssueStatus::InOrderStall;
        return out;
    }

    bool useLb = params_.loadCheck == LoadCheckPolicy::LoadBuffer;
    bool needLbEntry = useLb && !isOldest;
    if (needLbEntry && lb_.full()) {
        stats_.counter("lb.stallfull").inc();
        LSQ_TRACE_HOOK(tracer_, TraceEvent::LbFullStall, now, seq,
                       addr);
        out.status = LoadIssueStatus::LoadBufferFull;
        return out;
    }

    // Plan both searches before touching any port so the reservation
    // is atomic.
    bool doSq = wantSqSearch;
    SqSearchPlan sqPlan;
    if (doSq)
        sqPlan = planSqSearch(seq, addr);

    bool doLq =
        params_.loadCheck == LoadCheckPolicy::SearchLoadQueue ||
        params_.loadCheck == LoadCheckPolicy::InOrderAlwaysSearch;
    LqSearchPlan lqPlan;
    if (doLq)
        lqPlan = planLoadLqSearch(seq, addr, now);

    if (doSq && sqPorts().freePorts(sqPlan.visit[0], now) == 0) {
        out.status = LoadIssueStatus::NoSqPort;
        return out;
    }
    if (doLq && lqPorts().freePorts(lqPlan.visit[0], now) == 0) {
        out.status = LoadIssueStatus::NoLqPort;
        return out;
    }
    bool sqOk = !doSq || sqPorts().canReserveWalk(sqPlan.visit, now);
    bool lqOk = !doLq || lqPorts().canReserveWalk(lqPlan.visit, now);

    // Combined queue: both walks book the *same* schedule, so their
    // per-(segment, cycle) demands add up. The port arbiter staggers
    // the ordering walk by up to a few cycles to fit both (a single
    // port cannot serve two walks in one slot).
    Cycle lqOffset = 0;
    if (params_.combinedQueue && doSq && doLq && sqOk && lqOk) {
        PortSchedule &ps = lqPorts();
        bool found = false;
        while (lqOffset <= 4 && !found) {
            bool ok = true;
            for (std::size_t i = 0; ok && i < sqPlan.visit.size();
                 ++i) {
                unsigned demand = 1;
                for (std::size_t j = 0; j < lqPlan.visit.size(); ++j)
                    if (lqPlan.visit[j] == sqPlan.visit[i] &&
                        lqOffset + j == i)
                        ++demand;
                if (ps.freePorts(sqPlan.visit[i], now + i) < demand)
                    ok = false;
            }
            for (std::size_t j = 0; ok && j < lqPlan.visit.size(); ++j)
                if (ps.freePorts(lqPlan.visit[j],
                                 now + lqOffset + j) == 0)
                    ok = false;
            if (ok)
                found = true;
            else
                ++lqOffset;
        }
        if (!found)
            lqOk = false;
    }
    if (!sqOk || !lqOk) {
        // First segment had a port but a downstream slot is booked by
        // an earlier-initiated search: the paper's contention case.
        stats_.counter("lsq.contention.loads").inc();
        LSQ_TRACE_HOOK(
            tracer_, TraceEvent::SqSearchContention, now, seq, addr,
            static_cast<std::uint8_t>(!sqOk),
            static_cast<std::uint16_t>(
                params_.contentionPolicy ==
                        ContentionPolicy::SquashReplay
                    ? params_.contentionReplayDelay
                    : 1));
        out.status =
            params_.contentionPolicy == ContentionPolicy::SquashReplay
                ? LoadIssueStatus::Contention
                : (!sqOk ? LoadIssueStatus::NoSqPort
                         : LoadIssueStatus::NoLqPort);
        return out;
    }

    if (doSq) {
        sqPorts().reserveWalk(sqPlan.visit, now);
        stats_.counter("sq.searches").inc();
        stats_.histogram("sq.search.segments",
                         params_.numSegments + 1)
            .sample(sqPlan.visit.size());
        out.searchedSq = true;
        out.sqSegmentsVisited =
            static_cast<unsigned>(sqPlan.visit.size());
        if (sqPlan.match) {
            stats_.counter("sq.searches.matched").inc();
            out.forwarded = true;
            out.forwardedFrom = sqPlan.match->seq;
            out.forwardedFromPc = sqPlan.match->pc;
        }
        LSQ_TRACE_HOOK(tracer_, TraceEvent::SqSearch, now, seq, addr,
                       static_cast<std::uint8_t>(out.forwarded),
                       static_cast<std::uint16_t>(sqPlan.visit.size()));
        if (out.forwarded) {
            LSQ_TRACE_HOOK(tracer_, TraceEvent::ForwardHit, now, seq,
                           out.forwardedFrom);
        }
    }
    if (doLq) {
        lqPorts().reserveWalk(lqPlan.visit, now + lqOffset);
        stats_.counter("lq.searches.byload").inc();
        LSQ_TRACE_HOOK(tracer_, TraceEvent::LqSearch, now, seq, addr, 0,
                       static_cast<std::uint16_t>(lqPlan.visit.size()));
        if (lqPlan.violator)
            out.llViolations.push_back(lqPlan.violator->seq);
    }

    std::size_t spanSq = doSq ? sqPlan.visit.size() : 0;
    std::size_t spanLq =
        doLq ? static_cast<std::size_t>(lqOffset) + lqPlan.visit.size()
             : 0;
    out.searchDoneCycle = now + std::max<std::size_t>(
                                    1, std::max(spanSq, spanLq));
    out.constantLatency =
        !params_.segmented() || !doSq ||
        (sqPlan.visit.size() == 1 && sqPlan.endsAtHead);

    // Commit the issue.
    e->addr = addr;
    e->executed = true;
    e->executeCycle = now;
    e->forwardedFrom = out.forwarded ? out.forwardedFrom : kNoSeq;

    if (!isOldest) {
        e->wasOoo = true;
        ++oooLive_;
        if (useLb) {
            lb_.insert(seq, addr, now);
            stats_.counter("lb.inserts").inc();
            LSQ_TRACE_HOOK(tracer_, TraceEvent::LbInsert, now, seq,
                           addr);
        }
    } else if (useLb) {
        // In-order load: immediate load-buffer ordering search.
        stats_.counter("lb.searches").inc();
        SeqNum v = lb_.findViolation(seq, addr, now);
        if (v != kNoSeq)
            out.llViolations.push_back(v);
    }

    advanceNilp(out, now);
    out.status = LoadIssueStatus::Accepted;

    // NILP/LIV consistency: the load buffer only ever holds live
    // loads that issued out of order and were not yet passed.
    LSQ_DCHECK(!useLb || lb_.size() <= oooLive_,
               "load buffer holds more entries than OOO loads live");
    LSQ_CHECK_HOOK(onLoadIssue(seq, addr, now, out));
    return out;
}

// ---------------------------------------------------- store side ------

// lsqlint: hot
StoreSearchOutcome
Lsq::storeAddrReady(SeqNum seq, Addr addr, Cycle now)
{
    StoreSearchOutcome out;
    StoreEntry *s = findStore(seq);
    LSQ_ASSERT(s != nullptr, "storeAddrReady: unknown store %llu",
               static_cast<unsigned long long>(seq));

    if (params_.checkViolationsAtCommit) {
        // Pair-predictor scheme: no execute-time search; the address
        // simply becomes visible for forwarding.
        s->addr = addr;
        s->addrValid = true;
        out.accepted = true;
        out.searchDoneCycle = now;
        LSQ_CHECK_HOOK(onStoreAddrReady(seq, addr, now, out));
        return out;
    }

    LqSearchPlan plan = planStoreLqSearch(seq, addr);
    if (lqPorts().freePorts(plan.visit[0], now) == 0) {
        out.accepted = false;   // retry next cycle
        return out;
    }
    if (!lqPorts().canReserveWalk(plan.visit, now)) {
        // Delaying a store's execute-time search is harmless.
        out.accepted = false;
        out.contention = true;
        return out;
    }
    lqPorts().reserveWalk(plan.visit, now);
    stats_.counter("lq.searches.bystore").inc();
    LSQ_TRACE_HOOK(tracer_, TraceEvent::StoreSearch, now, seq, addr, 0,
                   static_cast<std::uint16_t>(plan.visit.size()));

    s->addr = addr;
    s->addrValid = true;
    out.accepted = true;
    out.segmentsVisited = static_cast<unsigned>(plan.visit.size());
    out.searchDoneCycle = now + plan.visit.size();
    if (plan.violator) {
        LSQ_DCHECK(plan.violator->seq > seq,
                   "store-load violator must be younger than the store");
        out.violationLoad = plan.violator->seq;
        out.violationLoadPc = plan.violator->pc;
    }
    LSQ_CHECK_HOOK(onStoreAddrReady(seq, addr, now, out));
    return out;
}

// lsqlint: hot
StoreSearchOutcome
Lsq::invalidate(Addr addr, Cycle now)
{
    StoreSearchOutcome out;
    if (params_.loadCheck == LoadCheckPolicy::LoadBuffer ||
        params_.loadCheck == LoadCheckPolicy::InOrder) {
        // Load-buffer scheme 2 (Section 2.2): only a load that issued
        // past an older still-non-issued load can have read a value a
        // remote write makes stale relative to what the older load
        // will read — and those loads are exactly the load buffer's
        // residents. The snoop is a lookup of the tiny CAM, free of
        // LQ search ports (that is the point of the scheme; in-order
        // issue keeps the buffer empty, so nothing is ever vulnerable).
        SeqNum victim = lb_.findMatch(addr);
        stats_.counter("lb.probes").inc();
        LSQ_TRACE_HOOK(tracer_, TraceEvent::LbProbe, now,
                       victim, addr,
                       static_cast<std::uint8_t>(victim != kNoSeq));
        out.accepted = true;
        out.searchDoneCycle = now;
        if (victim != kNoSeq) {
            out.violationLoad = victim;
            const LoadEntry *e = findLoad(victim);
            LSQ_DCHECK(e != nullptr,
                       "load-buffer resident missing from the LQ");
            if (e != nullptr)
                out.violationLoadPc = e->pc;
        }
        LSQ_CHECK_HOOK(onInvalidate(addr, now, out));
        return out;
    }

    // Plan: all segments holding executed loads to @p addr; the
    // oldest match is the squash target (it and everything younger
    // refetch, like the R10000's outstanding-load check).
    LqSearchPlan plan;
    for (const auto &e : lq_) {
        if (std::find(plan.visit.begin(), plan.visit.end(),
                      e.segment) == plan.visit.end())
            plan.visit.push_back(e.segment);
        if (e.executed && e.addr == addr) {
            plan.violator = &e;
            break;
        }
    }
    if (plan.visit.empty())
        plan.visit.push_back(loadAlloc().tailSegment());

    if (lqPorts().freePorts(plan.visit[0], now) == 0 ||
        !lqPorts().canReserveWalk(plan.visit, now)) {
        out.accepted = false;   // coherence controller retries
        return out;
    }
    lqPorts().reserveWalk(plan.visit, now);
    stats_.counter("lq.searches.invalidation").inc();
    LSQ_TRACE_HOOK(tracer_, TraceEvent::InvalSearch, now,
                   plan.violator ? plan.violator->seq : kNoSeq, addr, 0,
                   static_cast<std::uint16_t>(plan.visit.size()));
    out.accepted = true;
    out.segmentsVisited = static_cast<unsigned>(plan.visit.size());
    out.searchDoneCycle = now + plan.visit.size();
    if (plan.violator) {
        out.violationLoad = plan.violator->seq;
        out.violationLoadPc = plan.violator->pc;
    }
    LSQ_CHECK_HOOK(onInvalidate(addr, now, out));
    return out;
}

// lsqlint: hot
StoreSearchOutcome
Lsq::commitStore(SeqNum seq, Cycle now)
{
    StoreSearchOutcome out;
    LSQ_ASSERT(!sq_.empty() && sq_.front().seq == seq,
               "commitStore: %llu is not the SQ head",
               static_cast<unsigned long long>(seq));

    if (params_.checkViolationsAtCommit) {
        LqSearchPlan plan = planStoreLqSearch(seq, sq_.front().addr);
        if (lqPorts().freePorts(plan.visit[0], now) == 0 ||
            !lqPorts().canReserveWalk(plan.visit, now)) {
            // Section 3.2: "easily solved by delaying the commit of
            // the store".
            stats_.counter("lsq.commit.delays").inc();
            LSQ_TRACE_HOOK(tracer_, TraceEvent::StoreCommitDelay, now,
                           seq, sq_.front().addr);
            out.accepted = false;
            return out;
        }
        lqPorts().reserveWalk(plan.visit, now);
        stats_.counter("lq.searches.bystore").inc();
        LSQ_TRACE_HOOK(tracer_, TraceEvent::StoreCommitSearch, now, seq,
                       sq_.front().addr, 0,
                       static_cast<std::uint16_t>(plan.visit.size()));
        out.segmentsVisited = static_cast<unsigned>(plan.visit.size());
        out.searchDoneCycle = now + plan.visit.size();
        if (plan.violator) {
            out.violationLoad = plan.violator->seq;
            out.violationLoadPc = plan.violator->pc;
        }
    } else {
        out.searchDoneCycle = now;
    }

    LSQ_DCHECK(sq_.front().addrValid,
               "committing a store that never exposed its address");
    sq_.pop_front();
    storeAlloc().freeOldest();
    out.accepted = true;
    LSQ_CHECK_HOOK(onStoreCommit(seq, now, out));
    return out;
}

// lsqlint: hot
void
Lsq::commitLoad(SeqNum seq)
{
    LSQ_ASSERT(!lq_.empty() && lq_.front().seq == seq,
               "commitLoad: %llu is not the LQ head",
               static_cast<unsigned long long>(seq));
    LoadEntry &e = lq_.front();
    LSQ_ASSERT(e.executed, "committing an unexecuted load");
    if (e.wasOoo && !e.passedByNilp) {
        LSQ_ASSERT(oooLive_ > 0, "oooLive underflow at commit");
        --oooLive_;
        lb_.release(e.seq);
    }
    lq_.pop_front();
    loadAlloc().freeOldest();
    LSQ_CHECK_HOOK(onLoadCommit(seq));
}

// ---------------------------------------------------- recovery --------

// lsqlint: hot
void
Lsq::squashFrom(SeqNum seq)
{
    if (params_.combinedQueue) {
        // The shared allocator frees youngest-first across *both*
        // instruction types, so interleave by global age.
        while (true) {
            SeqNum lt = lq_.empty() ? kNoSeq : lq_.back().seq;
            SeqNum st = sq_.empty() ? kNoSeq : sq_.back().seq;
            bool loadEligible = lt != kNoSeq && lt >= seq;
            bool storeEligible = st != kNoSeq && st >= seq;
            if (!loadEligible && !storeEligible)
                break;
            if (loadEligible && (!storeEligible || lt > st)) {
                LoadEntry &e = lq_.back();
                if (e.wasOoo && !e.passedByNilp) {
                    LSQ_ASSERT(oooLive_ > 0,
                               "oooLive underflow at squash");
                    --oooLive_;
                }
                lq_.pop_back();
            } else {
                sq_.pop_back();
            }
            lqAlloc_.freeYoungest();
        }
        lb_.squashFrom(seq);
        LSQ_CHECK_HOOK(onSquash(seq));
        return;
    }

    while (!lq_.empty() && lq_.back().seq >= seq) {
        LoadEntry &e = lq_.back();
        if (e.wasOoo && !e.passedByNilp) {
            LSQ_ASSERT(oooLive_ > 0, "oooLive underflow at squash");
            --oooLive_;
        }
        lq_.pop_back();
        lqAlloc_.freeYoungest();
    }
    while (!sq_.empty() && sq_.back().seq >= seq) {
        sq_.pop_back();
        sqAlloc_.freeYoungest();
    }
    lb_.squashFrom(seq);
    LSQ_DCHECK(lq_.empty() || lq_.back().seq < seq,
               "squash left a too-young load behind");
    LSQ_DCHECK(sq_.empty() || sq_.back().seq < seq,
               "squash left a too-young store behind");
    LSQ_CHECK_HOOK(onSquash(seq));
}

// ---------------------------------------------------- stats -----------

// lsqlint: hot
void
Lsq::sampleOccupancy()
{
    stats_.histogram("lq.occupancy", params_.totalLqEntries() + 2)
        .sample(lqLive());
    stats_.histogram("sq.occupancy", params_.totalSqEntries() + 2)
        .sample(sqLive());
    stats_.histogram("ooo.inflight", 64).sample(oooLive_);
}

// ------------------------------------------------ fault injection -----

bool
Lsq::injectStateCorruption(std::uint64_t seed)
{
    // One flipped address bit per resident addressed store. Bits 3..10
    // stay within a block/page so the corrupt address is plausible —
    // exactly the kind of silent datapath fault the ordering oracle
    // exists to catch. Deterministic in (seed, queue contents).
    Addr mask = Addr{1} << (3 + (Rng::mix(seed) & 7));
    bool corrupted = false;
    for (auto &e : sq_) {
        if (!e.addrValid)
            continue;
        e.addr ^= mask;
        corrupted = true;
    }
    if (corrupted)
        LSQ_WARN("inject: flipped address bit 0x%llx in resident "
                 "store-queue entries",
                 static_cast<unsigned long long>(mask));
    return corrupted;
}

// ---------------------------------------------- checkpointing ---------

void
Lsq::saveState(SerialWriter &w) const
{
    LSQ_ASSERT(lq_.empty() && sq_.empty() && lb_.size() == 0 &&
                   oooLive_ == 0,
               "checkpointing a non-drained LSQ (lq=%zu sq=%zu)",
               lq_.size(), sq_.size());
    lqAlloc_.saveState(w);
    sqAlloc_.saveState(w);
}

void
Lsq::loadState(SerialReader &r)
{
    LSQ_ASSERT(lq_.empty() && sq_.empty() && lb_.size() == 0 &&
                   oooLive_ == 0,
               "restoring into a non-drained LSQ");
    lqAlloc_.loadState(r);
    sqAlloc_.loadState(r);
}

} // namespace lsqscale
