/**
 * @file
 * The load buffer (Section 2.2 of the paper).
 *
 * A tiny CAM holding only loads that issued out of order with respect
 * to older not-yet-issued loads. Load-load ordering checks search this
 * buffer instead of the whole load queue. The owning Lsq drives the
 * NILP (Non-Issued Load Pointer) / LIV (Load Issue Vector) protocol:
 *
 *  - when a load issues while an older load is still non-issued, it
 *    inserts its address here (stalling if the buffer is full);
 *  - when the NILP passes an already-issued load, that load's entry is
 *    released and the load performs its (deferred) ordering search;
 *  - a load issuing in order (NILP pointing at it) searches the buffer
 *    immediately and never occupies an entry.
 */

#ifndef LSQSCALE_LSQ_LOAD_BUFFER_HH
#define LSQSCALE_LSQ_LOAD_BUFFER_HH

#include <cstddef>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace lsqscale {

/** The small out-of-order-issued-loads CAM. */
class LoadBuffer
{
  public:
    /**
     * @param entries capacity; 0 models the in-order-issue baseline
     *        (nothing can be inserted).
     * @param unbounded if true, capacity is ignored (used to gather
     *        Table 4 statistics in configurations without a real
     *        load buffer).
     */
    explicit LoadBuffer(unsigned entries, bool unbounded = false)
        : capacity_(entries), unbounded_(unbounded)
    {}

    bool
    full() const
    {
        return !unbounded_ && live_.size() >= capacity_;
    }

    std::size_t size() const { return live_.size(); }
    unsigned capacity() const { return capacity_; }

    /** Insert an out-of-order-issued load. Caller checks full(). */
    void
    insert(SeqNum seq, Addr addr, Cycle executeCycle)
    {
        LSQ_DCHECK(!full(), "insert into a full load buffer");
        LSQ_DCHECK(executeCycle != kNoCycle,
                   "inserted load has no execute cycle");
        live_.push_back(Entry{seq, addr, executeCycle});
    }

    /** Release the entry of @p seq (NILP passed it). No-op if absent. */
    void
    release(SeqNum seq)
    {
        for (std::size_t i = 0; i < live_.size(); ++i) {
            if (live_[i].seq == seq) {
                live_.erase(live_.begin() + i);
                return;
            }
        }
    }

    /** Remove every entry with sequence number >= @p seq (squash). */
    void
    squashFrom(SeqNum seq)
    {
        std::erase_if(live_, [seq](const Entry &e) {
            return e.seq >= seq;
        });
    }

    /**
     * Ordering search on behalf of the load (@p seq, @p addr) that
     * executed at @p executeCycle: find the *oldest* load in the buffer
     * that is younger than seq, matches the address, and executed
     * strictly earlier — i.e. a load-load order violation.
     *
     * @return the violating load's seq, or kNoSeq.
     */
    SeqNum
    findViolation(SeqNum seq, Addr addr, Cycle executeCycle) const
    {
        SeqNum worst = kNoSeq;
        for (const Entry &e : live_) {
            if (e.seq > seq && e.addr == addr &&
                e.executeCycle < executeCycle) {
                if (worst == kNoSeq || e.seq < worst)
                    worst = e.seq;
            }
        }
        return worst;
    }

    /**
     * Coherence snoop on behalf of an external invalidation of
     * @p addr: find the *oldest* resident load to that line. Loads in
     * this buffer executed while an older load was still non-issued,
     * so a remote write to their line means the value they read may
     * already be stale when the older load finally reads a newer one
     * — exactly the R10000 "scheme 2" squash window, confined to this
     * tiny CAM instead of the whole load queue.
     *
     * @return the vulnerable load's seq, or kNoSeq.
     */
    SeqNum
    findMatch(Addr addr) const
    {
        SeqNum oldest = kNoSeq;
        for (const Entry &e : live_) {
            if (e.addr == addr && (oldest == kNoSeq || e.seq < oldest))
                oldest = e.seq;
        }
        return oldest;
    }

    void clear() { live_.clear(); }

  private:
    struct Entry
    {
        SeqNum seq;
        Addr addr;
        Cycle executeCycle;
    };

    unsigned capacity_;
    bool unbounded_;
    std::vector<Entry> live_;
};

} // namespace lsqscale

#endif // LSQSCALE_LSQ_LOAD_BUFFER_HH
