/**
 * @file
 * The full memory hierarchy: split L1 I/D, unified L2, flat memory.
 *
 * Latencies follow Table 1 of the paper: pipelined 2-cycle L1 hits
 * (64K, 2-way, 32B blocks; 2 I-ports / 4 D-ports), pipelined 12-cycle
 * L2 hits (2M, 8-way, 64B blocks), and a 150-cycle memory.
 */

#ifndef LSQSCALE_MEMORY_MEMORY_SYSTEM_HH
#define LSQSCALE_MEMORY_MEMORY_SYSTEM_HH

#include <map>

#include "common/stats.hh"
#include "common/types.hh"
#include "memory/cache.hh"

namespace lsqscale {

/** Hierarchy-wide configuration. */
struct MemoryParams
{
    CacheParams l1i{"l1i", 64 * 1024, 2, 32, 2, 2};
    CacheParams l1d{"l1d", 64 * 1024, 2, 32, 2, 4};
    CacheParams l2{"l2", 2 * 1024 * 1024, 8, 64, 12, 4};
    unsigned memLatency = 150;
    /**
     * L1-D miss-status holding registers: the maximum number of
     * outstanding (distinct-block) misses. Accesses to a block with a
     * fill in flight merge into its MSHR; primary misses beyond the
     * limit are rejected and the core retries. 0 = unlimited (the
     * paper does not specify an MSHR count; memory-level parallelism
     * is then bounded by the load queue, see DESIGN.md §4).
     */
    unsigned l1dMshrs = 0;
};

/** Result of a timing access. */
struct MemAccessResult
{
    Cycle readyCycle;   ///< cycle the data (or write ack) is available
    bool l1Hit;
    bool l2Hit;         ///< meaningful only when !l1Hit
    /** No MSHR free for a new miss: retry next cycle. */
    bool rejected = false;
};

/**
 * Timing-only memory system.
 *
 * Accesses are non-blocking: each access independently computes its
 * completion cycle from the levels it traverses. Port limits apply at
 * the L1s (the caller checks/consumes D-cache ports before issuing a
 * load; fetch consumes I-cache ports).
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemoryParams &params = MemoryParams());

    /** Data access (load or committed store). */
    MemAccessResult accessData(Cycle now, Addr addr, bool isWrite);

    /**
     * True if accessData(now, addr, ...) would be accepted (i.e. the
     * access hits, merges into an in-flight fill, or a free MSHR
     * exists). Always true with unlimited MSHRs.
     */
    bool canAcceptData(Cycle now, Addr addr);

    /** Instruction fetch access for the block containing @p pc. */
    MemAccessResult accessInst(Cycle now, Addr pc);

    Cache &l1d() { return l1d_; }
    Cache &l1i() { return l1i_; }
    Cache &l2() { return l2_; }
    const MemoryParams &params() const { return params_; }

    /** Outstanding L1-D fills (for tests/stats). */
    std::size_t outstandingFills(Cycle now) const;

    void exportStats(StatSet &stats) const;

    /** Serialize all caches + MSHRs (checkpointing, docs/SAMPLING.md). */
    void saveState(SerialWriter &w) const;
    /** Restore state written by saveState (geometry must match). */
    void loadState(SerialReader &r);

  private:
    MemAccessResult walk(Cycle now, Addr addr, Cache &l1);
    void pruneFills(Cycle now);

    // lsqlint: no-serialize(construction config, fixed for the run)
    MemoryParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;

    /** In-flight L1-D fills: block number -> data-arrival cycle. */
    std::map<Addr, Cycle> pendingFills_;
};

} // namespace lsqscale

#endif // LSQSCALE_MEMORY_MEMORY_SYSTEM_HH
