#include "memory/cache.hh"

#include "common/logging.hh"

namespace lsqscale {

namespace {

bool
isPow2(std::uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params) : params_(params)
{
    LSQ_ASSERT(params_.assoc >= 1, "%s: assoc", params_.name.c_str());
    LSQ_ASSERT(isPow2(params_.blockBytes), "%s: block size not pow2",
               params_.name.c_str());
    numSets_ = params_.sizeBytes / (params_.assoc * params_.blockBytes);
    LSQ_ASSERT(numSets_ >= 1 && isPow2(numSets_),
               "%s: sets=%llu not a power of two", params_.name.c_str(),
               static_cast<unsigned long long>(numSets_));
    lines_.resize(numSets_ * params_.assoc);
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / params_.blockBytes) & (numSets_ - 1);
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / params_.blockBytes) / numSets_;
}

bool
Cache::access(Addr addr)
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    Line *base = &lines_[set * params_.assoc];

    ++stamp_;
    for (unsigned w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lru = stamp_;
            ++hits_;
            return true;
        }
    }

    // Miss: fill into the LRU way.
    unsigned victim = 0;
    for (unsigned w = 1; w < params_.assoc; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lru < base[victim].lru)
            victim = w;
    }
    base[victim].valid = true;
    base[victim].tag = tag;
    base[victim].lru = stamp_;
    ++misses_;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    std::uint64_t set = setIndex(addr);
    std::uint64_t tag = tagOf(addr);
    const Line *base = &lines_[set * params_.assoc];
    for (unsigned w = 0; w < params_.assoc; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

bool
Cache::tryPort(Cycle now)
{
    if (portCycle_ != now) {
        portCycle_ = now;
        portsUsed_ = 0;
    }
    if (portsUsed_ >= params_.ports)
        return false;
    ++portsUsed_;
    return true;
}

unsigned
Cache::freePorts(Cycle now) const
{
    if (portCycle_ != now)
        return params_.ports;
    return portsUsed_ >= params_.ports ? 0 : params_.ports - portsUsed_;
}

void
Cache::exportStats(StatSet &stats) const
{
    stats.counter(params_.name + ".hits").inc(hits_);
    stats.counter(params_.name + ".misses").inc(misses_);
}

// ------------------------------------------------ checkpointing -----

void
Cache::saveState(SerialWriter &w) const
{
    w.u64(lines_.size());
    for (const Line &l : lines_) {
        w.u64(l.tag);
        w.b(l.valid);
        w.u64(l.lru);
    }
    w.u64(stamp_);
    w.u64(hits_);
    w.u64(misses_);
    w.u64(portCycle_);
    w.u32(portsUsed_);
}

void
Cache::loadState(SerialReader &r)
{
    std::uint64_t n = r.u64();
    if (n != lines_.size())
        throw SerialError(params_.name +
                          ": cache geometry mismatch "
                          "(checkpoint from a different config?)");
    for (Line &l : lines_) {
        l.tag = r.u64();
        l.valid = r.b();
        l.lru = r.u64();
    }
    stamp_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
    portCycle_ = r.u64();
    portsUsed_ = r.u32();
}

} // namespace lsqscale
