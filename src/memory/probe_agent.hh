/**
 * @file
 * External coherence agent: a deterministic source of invalidation
 * probes (docs/CONSISTENCY.md).
 *
 * The simulator models a single core; real load-buffer squashes are
 * triggered by *other* agents writing lines this core has loaded
 * (MESI invalidations reaching the LSQ, the R10000 "scheme 2" path).
 * A ProbeAgent plays that remote writer. It never carries data — this
 * is a timing simulator — but it gives every remote write two
 * observable coordinates:
 *
 *  - a visibility time: the cycle the probe is *delivered* to the LSQ
 *    (delivery == global visibility; the interconnect is in-order for
 *    a given line);
 *  - a value index: the per-line count of remote writes so far, so a
 *    load "reads" value k iff exactly k remote writes to its line were
 *    visible at its execute cycle (see valueAt()).
 *
 * Two operating modes, freely combinable:
 *
 *  - random mode (probesPerKCycle > 0): a seeded Bernoulli schedule
 *    picks lines from a bounded FIFO watch set fed by the core's own
 *    committed loads/stores — adversarial background traffic for the
 *    fuzz harnesses;
 *  - scripted mode (writers / triggers): periodic writers and
 *    store-commit-triggered writes with fixed delays — the building
 *    blocks the litmus engine (src/mcm/) uses to stage MP/SB/LB/CoRR
 *    shapes.
 *
 * Probe delivery protocol (driven by Core::tick's invalidation stage):
 *
 *    Addr a;
 *    if (agent->due(now, a)) {
 *        if (lsq.invalidate(a, now).accepted)
 *            agent->delivered(a, now, victimOrKNoSeq);
 *        else
 *            agent->rejected();        // retried next cycle
 *    }
 *
 * The agent is attached (Core::attachCoherenceAgent) like a tracer —
 * after warmup, outside the checkpoint format — and a null agent
 * costs one pointer test per cycle. All methods are non-virtual: the
 * call sites sit one level below Core::tick.
 */

#ifndef LSQSCALE_MEMORY_PROBE_AGENT_HH
#define LSQSCALE_MEMORY_PROBE_AGENT_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace lsqscale {

/** A scripted remote writer: writes @p addr every @p interval cycles. */
struct ProbeWriter
{
    Addr addr = 0;
    Cycle start = 0;        ///< first write is scheduled at this cycle
    Cycle interval = 0;     ///< 0 = one-shot (only the start write)
    std::uint64_t count = 0;///< total writes; 0 = unlimited
};

/**
 * A scripted reaction: when the core commits a store to @p onStoreAddr,
 * schedule a remote write to @p writeAddr @p delay cycles later. This
 * is how the LB (load buffering) litmus shape closes the cross-agent
 * cycle without a second simulated core.
 */
struct ProbeTrigger
{
    Addr onStoreAddr = 0;
    Addr writeAddr = 0;
    Cycle delay = 1;
};

/** Configuration (sim/sim_config.hh embeds one). */
struct ProbeAgentParams
{
    /** Master switch; a disabled agent is never attached. */
    bool enabled = false;

    /** Seed for the random-mode schedule. */
    std::uint64_t seed = 1;

    /**
     * Expected random probes per 1000 cycles (Bernoulli per cycle).
     * 0 disables random mode; scripted writers still run.
     */
    double probesPerKCycle = 0.0;

    /** Random-mode watch-set capacity (FIFO of observed lines). */
    unsigned watchCapacity = 8;

    std::vector<ProbeWriter> writers;
    std::vector<ProbeTrigger> triggers;
};

/** One delivered remote write (the agent's authoritative write log). */
struct RemoteWrite
{
    Addr addr;
    Cycle visibleAt;          ///< delivery cycle == visibility cycle
    std::uint64_t value;      ///< 1-based per-addr write index
    SeqNum squashedLoad;      ///< LB victim reported at delivery, or kNoSeq
};

/** One observed commit (recorded only while recording() is on). */
struct ProbeCommitRecord
{
    bool isLoad;
    SeqNum seq;
    Addr pc;
    Addr addr;
    Cycle executeCycle;       ///< loads only (kNoCycle for stores)
    SeqNum forwardedFrom;     ///< loads only (kNoSeq = from memory)
    Cycle commitCycle;
};

/**
 * The coherence agent. Concrete and final: its methods are invoked
 * from the core's per-cycle stages and must devirtualize away.
 */
class ProbeAgent final
{
  public:
    explicit ProbeAgent(const ProbeAgentParams &params);

    ProbeAgent(const ProbeAgent &) = delete;
    ProbeAgent &operator=(const ProbeAgent &) = delete;

    // ------------------------------------------ core-facing protocol --

    /**
     * Advance the schedule to @p now (each cycle is processed once)
     * and report whether a probe awaits delivery. On true, @p addr is
     * the line to invalidate; the caller must answer with delivered()
     * or rejected() before the next due() call.
     */
    bool due(Cycle now, Addr &addr);

    /** The due probe reached the LSQ: log the write as visible now. */
    void delivered(Addr addr, Cycle now, SeqNum squashedLoad);

    /** The LSQ had no capacity this cycle; the probe stays queued. */
    void rejected();

    // ------------------------------------------ commit observation ----

    /** The core committed a load (called before the LSQ releases it). */
    void observeLoadCommit(SeqNum seq, Addr pc, Addr addr,
                           Cycle executeCycle, SeqNum forwardedFrom,
                           Cycle now);

    /** The core committed a store this cycle. */
    void observeStoreCommit(SeqNum seq, Addr pc, Addr addr, Cycle now);

    // ------------------------------------------ inspection -------------

    /**
     * Value a non-forwarded load of @p addr executing at @p cycle
     * observes: the number of remote writes to @p addr visible at or
     * before @p cycle (0 = the initial value).
     */
    std::uint64_t valueAt(Addr addr, Cycle cycle) const;

    const std::vector<RemoteWrite> &writes() const { return writes_; }
    const std::vector<ProbeCommitRecord> &commits() const
    {
        return commits_;
    }

    /** Record observed commits (litmus engine); default off. */
    void setRecording(bool on) { recording_ = on; }
    bool recording() const { return recording_; }

    const ProbeAgentParams &params() const { return params_; }

    std::uint64_t deliveredCount() const { return deliveredCount_; }
    std::uint64_t rejectedCount() const { return rejectedCount_; }
    std::uint64_t squashCount() const { return squashCount_; }
    std::uint64_t watchEvictions() const { return watchEvictions_; }
    std::size_t watchSize() const { return watch_.size(); }
    std::size_t pendingProbes() const { return pending_.size(); }

  private:
    void watchLine(Addr addr);

    ProbeAgentParams params_;
    Rng rng_;

    /** Last cycle processed by due(); each cycle schedules once. */
    Cycle lastCycle_ = kNoCycle;

    /** FIFO watch set (random mode), oldest first, deduplicated. */
    std::vector<Addr> watch_;

    /** Per-writer count of writes already scheduled. */
    std::vector<std::uint64_t> writerFired_;

    /** Trigger-scheduled writes not yet moved into pending_. */
    struct DelayedWrite
    {
        Addr addr;
        Cycle fireAt;
    };
    std::vector<DelayedWrite> delayed_;

    /** Probes awaiting delivery, oldest first. */
    std::deque<Addr> pending_;

    /** Per-addr count of delivered writes (value indices). */
    std::vector<std::pair<Addr, std::uint64_t>> valueCounts_;

    std::vector<RemoteWrite> writes_;
    std::vector<ProbeCommitRecord> commits_;
    bool recording_ = false;

    std::uint64_t deliveredCount_ = 0;
    std::uint64_t rejectedCount_ = 0;
    std::uint64_t squashCount_ = 0;
    std::uint64_t watchEvictions_ = 0;
};

} // namespace lsqscale

#endif // LSQSCALE_MEMORY_PROBE_AGENT_HH
