/**
 * @file
 * ProbeAgent implementation (see probe_agent.hh for the model).
 */

#include "memory/probe_agent.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsqscale {

ProbeAgent::ProbeAgent(const ProbeAgentParams &params)
    : params_(params), rng_(Rng::mix(params.seed) ^ 0x70726f6265ULL)
{
    writerFired_.assign(params_.writers.size(), 0);
    watch_.reserve(params_.watchCapacity);
    for (const ProbeWriter &w : params_.writers) {
        LSQ_ASSERT(w.interval > 0 || w.count <= 1,
                   "repeating writer needs a non-zero interval");
    }
}

bool
ProbeAgent::due(Cycle now, Addr &addr)
{
    // Each cycle is scheduled exactly once; delivery retries of an
    // already-pending probe must not re-roll the schedule.
    if (lastCycle_ == kNoCycle || now > lastCycle_) {
        lastCycle_ = now;

        // Scripted periodic writers.
        for (std::size_t i = 0; i < params_.writers.size(); ++i) {
            const ProbeWriter &w = params_.writers[i];
            if (now < w.start)
                continue;
            if (params_.writers[i].count != 0 &&
                writerFired_[i] >= w.count)
                continue;
            bool fires;
            if (w.interval == 0) {
                fires = now == w.start && writerFired_[i] == 0;
            } else {
                fires = (now - w.start) % w.interval == 0;
            }
            if (fires) {
                ++writerFired_[i];
                pending_.push_back(w.addr);
            }
        }

        // Trigger-delayed writes whose time has come.
        for (std::size_t i = 0; i < delayed_.size();) {
            if (delayed_[i].fireAt <= now) {
                pending_.push_back(delayed_[i].addr);
                delayed_.erase(delayed_.begin() +
                               static_cast<std::ptrdiff_t>(i));
            } else {
                ++i;
            }
        }

        // Random background traffic over the watch set.
        if (params_.probesPerKCycle > 0.0 &&
            rng_.chance(params_.probesPerKCycle / 1000.0) &&
            !watch_.empty()) {
            pending_.push_back(watch_[rng_.below(watch_.size())]);
        }
    }

    if (pending_.empty())
        return false;
    addr = pending_.front();
    return true;
}

void
ProbeAgent::delivered(Addr addr, Cycle now, SeqNum squashedLoad)
{
    LSQ_ASSERT(!pending_.empty() && pending_.front() == addr,
               "delivered() without a matching due() probe");
    pending_.pop_front();

    std::uint64_t value = 0;
    for (auto &[a, count] : valueCounts_) {
        if (a == addr) {
            value = ++count;
            break;
        }
    }
    if (value == 0) {
        valueCounts_.emplace_back(addr, 1);
        value = 1;
    }

    writes_.push_back(RemoteWrite{addr, now, value, squashedLoad});
    ++deliveredCount_;
    if (squashedLoad != kNoSeq)
        ++squashCount_;
}

void
ProbeAgent::rejected()
{
    LSQ_ASSERT(!pending_.empty(), "rejected() with no pending probe");
    ++rejectedCount_;
}

void
ProbeAgent::observeLoadCommit(SeqNum seq, Addr pc, Addr addr,
                              Cycle executeCycle, SeqNum forwardedFrom,
                              Cycle now)
{
    watchLine(addr);
    if (recording_) {
        commits_.push_back(ProbeCommitRecord{true, seq, pc, addr,
                                             executeCycle, forwardedFrom,
                                             now});
    }
}

void
ProbeAgent::observeStoreCommit(SeqNum seq, Addr pc, Addr addr, Cycle now)
{
    watchLine(addr);
    for (const ProbeTrigger &t : params_.triggers) {
        if (t.onStoreAddr == addr)
            delayed_.push_back(DelayedWrite{t.writeAddr, now + t.delay});
    }
    if (recording_) {
        commits_.push_back(ProbeCommitRecord{false, seq, pc, addr,
                                             kNoCycle, kNoSeq, now});
    }
}

std::uint64_t
ProbeAgent::valueAt(Addr addr, Cycle cycle) const
{
    // writes_ is append-only in delivery order, so per-addr visibleAt
    // values are non-decreasing; a linear count keeps this simple (the
    // log is litmus-iteration sized).
    std::uint64_t n = 0;
    for (const RemoteWrite &w : writes_) {
        if (w.addr == addr && w.visibleAt <= cycle)
            ++n;
    }
    return n;
}

void
ProbeAgent::watchLine(Addr addr)
{
    if (params_.watchCapacity == 0)
        return;
    if (std::find(watch_.begin(), watch_.end(), addr) != watch_.end())
        return;
    if (watch_.size() >= params_.watchCapacity) {
        watch_.erase(watch_.begin());
        ++watchEvictions_;
    }
    watch_.push_back(addr);
}

} // namespace lsqscale
