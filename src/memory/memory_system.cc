#include "memory/memory_system.hh"

#include <algorithm>

namespace lsqscale {

MemorySystem::MemorySystem(const MemoryParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2)
{
}

MemAccessResult
MemorySystem::walk(Cycle now, Addr addr, Cache &l1)
{
    MemAccessResult res{};
    res.l1Hit = l1.access(addr);
    if (res.l1Hit) {
        res.readyCycle = now + l1.params().hitLatency;
        return res;
    }
    res.l2Hit = l2_.access(addr);
    if (res.l2Hit) {
        res.readyCycle = now + l1.params().hitLatency +
                         l2_.params().hitLatency;
        return res;
    }
    res.readyCycle = now + l1.params().hitLatency +
                     l2_.params().hitLatency + params_.memLatency;
    return res;
}

void
MemorySystem::pruneFills(Cycle now)
{
    for (auto it = pendingFills_.begin(); it != pendingFills_.end();) {
        if (it->second <= now)
            it = pendingFills_.erase(it);
        else
            ++it;
    }
}

std::size_t
MemorySystem::outstandingFills(Cycle now) const
{
    std::size_t n = 0;
    for (const auto &kv : pendingFills_)
        n += kv.second > now;
    return n;
}

bool
MemorySystem::canAcceptData(Cycle now, Addr addr)
{
    if (params_.l1dMshrs == 0)
        return true;
    pruneFills(now);
    Addr block = addr / params_.l1d.blockBytes;
    if (pendingFills_.count(block))
        return true;
    return l1d_.probe(addr) ||
           pendingFills_.size() < params_.l1dMshrs;
}

MemAccessResult
MemorySystem::accessData(Cycle now, Addr addr, bool isWrite)
{
    (void)isWrite;  // write-allocate: timing identical for our model
    if (params_.l1dMshrs == 0)
        return walk(now, addr, l1d_);

    pruneFills(now);
    Addr block = addr / params_.l1d.blockBytes;

    auto fill = pendingFills_.find(block);
    if (fill != pendingFills_.end()) {
        // Secondary miss / hit-under-fill: merge into the in-flight
        // MSHR; data arrives with the fill.
        MemAccessResult res{};
        res.l1Hit = l1d_.probe(addr);
        res.readyCycle =
            std::max<Cycle>(fill->second,
                            now + params_.l1d.hitLatency);
        return res;
    }

    // Primary access: a miss needs a free MSHR.
    if (!l1d_.probe(addr) &&
        pendingFills_.size() >= params_.l1dMshrs) {
        MemAccessResult res{};
        res.rejected = true;
        res.readyCycle = now + 1;
        return res;
    }
    MemAccessResult res = walk(now, addr, l1d_);
    if (!res.l1Hit)
        pendingFills_.emplace(block, res.readyCycle);
    return res;
}

MemAccessResult
MemorySystem::accessInst(Cycle now, Addr pc)
{
    return walk(now, pc, l1i_);
}

void
MemorySystem::exportStats(StatSet &stats) const
{
    l1i_.exportStats(stats);
    l1d_.exportStats(stats);
    l2_.exportStats(stats);
}

// ------------------------------------------------ checkpointing -----

void
MemorySystem::saveState(SerialWriter &w) const
{
    l1i_.saveState(w);
    l1d_.saveState(w);
    l2_.saveState(w);
    w.u64(pendingFills_.size());
    for (const auto &kv : pendingFills_) {
        w.u64(kv.first);
        w.u64(kv.second);
    }
}

void
MemorySystem::loadState(SerialReader &r)
{
    l1i_.loadState(r);
    l1d_.loadState(r);
    l2_.loadState(r);
    pendingFills_.clear();
    std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr block = r.u64();
        pendingFills_[block] = r.u64();
    }
}

} // namespace lsqscale
