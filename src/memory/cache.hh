/**
 * @file
 * Set-associative cache timing model.
 *
 * Tag-only (no data array — the simulator tracks timing, not values),
 * true-LRU replacement, pipelined hits, and per-cycle port accounting.
 * Misses fill immediately on lookup (non-blocking, unbounded MSHRs):
 * memory-level parallelism is then bounded by the load/store queue
 * capacity, which is exactly the effect the paper's segmentation study
 * depends on.
 */

#ifndef LSQSCALE_MEMORY_CACHE_HH
#define LSQSCALE_MEMORY_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "sample/serialize.hh"

namespace lsqscale {

/** Static cache geometry/timing configuration. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    unsigned assoc = 2;
    unsigned blockBytes = 32;
    unsigned hitLatency = 2;   ///< pipelined
    unsigned ports = 4;        ///< accesses accepted per cycle
};

/** One level of the hierarchy. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Probe and update the cache for the block containing @p addr.
     *
     * On a miss the block is allocated (LRU victim evicted).
     * @return true on hit.
     */
    bool access(Addr addr);

    /** True if the block is resident; no LRU/state update. */
    bool probe(Addr addr) const;

    /**
     * Per-cycle port arbitration: returns true and consumes a port if
     * one is free in cycle @p now.
     */
    bool tryPort(Cycle now);

    /** Ports still free in cycle @p now. */
    unsigned freePorts(Cycle now) const;

    const CacheParams &params() const { return params_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    /** Export hit/miss counters into @p stats under "<name>.". */
    void exportStats(StatSet &stats) const;

    /** Serialize tags/LRU/counters (checkpointing, docs/SAMPLING.md). */
    void saveState(SerialWriter &w) const;
    /** Restore state written by saveState (geometry must match). */
    void loadState(SerialReader &r);

  private:
    std::uint64_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    // lsqlint: no-serialize(construction config; loadState validates geometry against it)
    CacheParams params_;
    // lsqlint: no-serialize(derived from params at construction)
    std::uint64_t numSets_;

    struct Line
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t lru = 0;   ///< last-touch stamp
    };
    std::vector<Line> lines_;    ///< numSets * assoc, set-major
    std::uint64_t stamp_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;

    Cycle portCycle_ = kNoCycle;
    unsigned portsUsed_ = 0;
};

} // namespace lsqscale

#endif // LSQSCALE_MEMORY_CACHE_HH
