/**
 * @file
 * Golden sequential memory image for the ordering oracle.
 *
 * The oracle shadow-executes the *committed* instruction stream in
 * program order: every store updates the image when it commits, every
 * load is resolved against it when it commits. Because the pipeline
 * commits in order, the image at a load's commit contains exactly the
 * stores older than the load — so "the last committed writer of this
 * address" *is* the load's architecturally correct value source, with
 * no reasoning about in-flight state required (the QED-style reference
 * model of PAPERS.md).
 *
 * The image also keeps, per address, the last committed load's final
 * execute cycle: committed same-address loads must have monotonically
 * non-decreasing execute cycles when a load-load ordering policy is
 * active (a detected violation squashes and re-executes the younger
 * load, pushing its final execution later).
 */
// lsqlint: layer(common) -- golden memory image over common/types.hh only; consumed by the layer-1 checker interface

#ifndef LSQSCALE_CHECK_MEMORY_ORACLE_HH
#define LSQSCALE_CHECK_MEMORY_ORACLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace lsqscale {

/** Program-order shadow memory consulted by the LsqChecker. */
class MemoryOracle
{
  public:
    /** Last committed store to an address. */
    struct StoreRecord
    {
        SeqNum seq = kNoSeq;
        Pc pc = 0;
        /** Cycle the store's address became architecturally visible. */
        Cycle addrReadyCycle = kNoCycle;
        /** Cycle the store committed (wrote the data cache). */
        Cycle commitCycle = kNoCycle;
    };

    /** Last committed load from an address. */
    struct LoadRecord
    {
        SeqNum seq = kNoSeq;
        Pc pc = 0;
        /** Final (committed) execution cycle. */
        Cycle executeCycle = kNoCycle;
    };

    /**
     * Retire a store into the golden image.
     * @return false if commit order regressed (seq not monotonically
     *         increasing over all committed memory ops).
     */
    bool commitStore(SeqNum seq, Pc pc, Addr addr, Cycle addrReadyCycle,
                     Cycle commitCycle);

    /**
     * Retire a load.
     * @return false if commit order regressed.
     */
    bool commitLoad(SeqNum seq, Pc pc, Addr addr, Cycle executeCycle);

    /** Youngest committed store to @p addr, or nullptr. */
    const StoreRecord *lastStore(Addr addr) const;

    /** Youngest committed load from @p addr, or nullptr. */
    const LoadRecord *lastLoad(Addr addr) const;

    std::uint64_t commits() const { return commits_; }

    // ------------------------------------- remote (coherence) writes --
    /**
     * Record a remote agent's write to @p addr that became globally
     * visible at @p visibleAt (the cycle its invalidation probe was
     * delivered). Per-address visibility times must be non-decreasing
     * — probes to one line are delivered in order.
     */
    void noteRemoteWrite(Addr addr, Cycle visibleAt);

    /**
     * True if a remote write to @p addr became visible strictly inside
     * the open interval (@p after, @p before). The probe-squash
     * invariant: a committed, non-forwarded load that executed at
     * `after` while an older load only executed at `before` must have
     * been squashed by any such write.
     */
    bool remoteWriteBetween(Addr addr, Cycle after, Cycle before) const;

    /**
     * Largest final execute cycle over all committed loads, or kNoCycle
     * before the first load commits.
     */
    Cycle maxCommittedLoadExec() const { return maxLoadExec_; }

  private:
    bool advanceCommitOrder(SeqNum seq);

    std::unordered_map<Addr, StoreRecord> image_;
    std::unordered_map<Addr, LoadRecord> loads_;
    /** Per-address visibility cycles of remote writes (sorted). */
    std::unordered_map<Addr, std::vector<Cycle>> remoteWrites_;
    SeqNum lastCommit_ = 0;
    bool anyCommit_ = false;
    std::uint64_t commits_ = 0;
    Cycle maxLoadExec_ = kNoCycle;
};

} // namespace lsqscale

#endif // LSQSCALE_CHECK_MEMORY_ORACLE_HH
