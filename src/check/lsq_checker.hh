/**
 * @file
 * Event-driven memory-ordering oracle for the LSQ.
 *
 * The checker observes every state transition of an Lsq (allocation,
 * load issue, store AGEN, commit, squash, invalidation) through the
 * hooks in lsq.cc and cross-checks each LoadIssueOutcome /
 * StoreSearchOutcome against two reference models:
 *
 *  1. a *shadow LSQ* — plain program-order deques updated by the same
 *     event stream, used to recompute what each CAM search should have
 *     returned (youngest-older forwarder, oldest-younger violator)
 *     with none of the segmentation/port/load-buffer machinery; and
 *  2. a MemoryOracle — a golden sequential memory image that resolves
 *     every *committed* load to its architecturally correct value
 *     source (the decisive end-to-end check: a wrong forwarding or
 *     missed-violation decision that survives to commit is flagged
 *     here even if every intermediate report looked plausible).
 *
 * The checker is a pure observer: it never touches the Lsq, so checked
 * and unchecked runs are cycle-for-cycle identical. Attach one with
 * Lsq::attachChecker(); build with -DLSQ_CHECKER=ON to have the
 * Simulator attach one to every run and panic on any mismatch.
 */
// lsqlint: layer(lsq) -- checker interface consumed by Lsq itself (lsq.cc drives the hooks); the oracle implementation stays in layer-3 lsq_checker.cc

#ifndef LSQSCALE_CHECK_LSQ_CHECKER_HH
#define LSQSCALE_CHECK_LSQ_CHECKER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "check/memory_oracle.hh"
#include "common/types.hh"
#include "lsq/lsq.hh"

namespace lsqscale {

/** Classification of an oracle mismatch. */
enum class CheckErrorKind : std::uint8_t {
    /** Load forwarded from a store other than the youngest older match. */
    WrongForwarder,
    /** Searched-SQ load missed a visible older matching store. */
    MissedForward,
    /** Load forwarded although no older matching store was visible. */
    PhantomForward,
    /**
     * Load committed a premature execution: the correct older store had
     * not yet exposed its address at the load's final execute cycle and
     * no violation squash ever replayed the load.
     */
    MissedStoreLoadViolation,
    /** Store search reported a violator the reference rule rejects. */
    PhantomStoreLoadViolation,
    /** Store search missed (or mis-picked) the oldest true violator. */
    MissedStoreLoadDetection,
    /** Reported load-load violation with no genuine violating pair. */
    PhantomLoadLoadViolation,
    /**
     * Committed same-address loads executed out of order although a
     * load-load ordering policy was active (load buffer / LQ search
     * failed to squash the younger load).
     */
    UndetectedLoadLoadOrder,
    /** Event-protocol breakage: bad commit order, unknown seq, ... */
    BrokenProtocol,
    /**
     * A coherence probe failed to squash the load the vulnerability
     * rule demands (or a probe-marked victim later committed without
     * an intervening squash, or a committed load turned out to have
     * read a value a remote write had already made stale relative to
     * an older load's execution).
     */
    MissedProbeSquash,
    /** A probe squashed a load the vulnerability rule exempts. */
    SpuriousProbeSquash,
};

const char *checkErrorKindName(CheckErrorKind kind);

/** One oracle mismatch, with full per-op provenance. */
struct CheckError
{
    CheckErrorKind kind;
    SeqNum seq = kNoSeq;      ///< the op being checked
    Pc pc = 0;
    Addr addr = 0;
    Cycle cycle = kNoCycle;   ///< cycle of the checked event
    SeqNum expected = kNoSeq; ///< reference model's answer (if any)
    SeqNum actual = kNoSeq;   ///< the LSQ's answer (if any)
    std::string detail;       ///< human-readable provenance
};

/** Shadow-executing oracle checker for one Lsq instance. */
class LsqChecker
{
  public:
    explicit LsqChecker(const LsqParams &params);

    // ------------------------------------------------ hooks ----------
    // Called by Lsq (see LSQ_CHECK_HOOK in lsq.cc) after the mirrored
    // mutation took effect. Rejected operations (accepted == false /
    // status != Accepted) did not mutate the Lsq and are ignored here.
    void onAllocateLoad(SeqNum seq, Pc pc);
    void onAllocateStore(SeqNum seq, Pc pc);
    void onLoadIssue(SeqNum seq, Addr addr, Cycle now,
                     const LoadIssueOutcome &out);
    void onStoreAddrReady(SeqNum seq, Addr addr, Cycle now,
                          const StoreSearchOutcome &out);
    void onStoreCommit(SeqNum seq, Cycle now,
                       const StoreSearchOutcome &out);
    void onLoadCommit(SeqNum seq);
    void onInvalidate(Addr addr, Cycle now,
                      const StoreSearchOutcome &out);
    void onSquash(SeqNum from);

    // ------------------------------------------------ results --------
    /** Total mismatches found so far. */
    std::uint64_t mismatches() const { return mismatches_; }
    /** Events validated (allocations, issues, AGENs, commits). */
    std::uint64_t opsChecked() const { return opsChecked_; }
    /** First kMaxStoredErrors mismatches, with provenance. */
    const std::vector<CheckError> &errors() const { return errors_; }
    /** Multi-line report of every stored mismatch. */
    std::string report() const;

    /** Panic immediately on the first mismatch (localizes failures). */
    void setAbortOnError(bool abort) { abortOnError_ = abort; }

    static constexpr std::size_t kMaxStoredErrors = 32;

  private:
    struct ShadowLoad
    {
        SeqNum seq;
        Pc pc;
        Addr addr = 0;
        bool executed = false;
        Cycle executeCycle = kNoCycle;
        SeqNum forwardedFrom = kNoSeq;
        bool searchedSq = false;
    };

    struct ShadowStore
    {
        SeqNum seq;
        Pc pc;
        Addr addr = 0;
        bool addrValid = false;
        Cycle addrReadyCycle = kNoCycle;
    };

    ShadowLoad *findLoad(SeqNum seq);
    ShadowStore *findStore(SeqNum seq);

    /** Youngest older addr-valid matching store (reference rule 1). */
    const ShadowStore *expectedForwarder(SeqNum loadSeq, Addr addr) const;
    /** Oldest younger executed stale matching load (reference rule 2). */
    const ShadowLoad *expectedViolator(SeqNum storeSeq, Addr addr) const;

    void checkStoreSearch(SeqNum seq, Addr addr, Cycle now,
                          const StoreSearchOutcome &out,
                          const char *when);

    void fail(CheckError err);
    void protocolFail(SeqNum seq, Cycle cycle, const std::string &what);

    /**
     * Reference squash target for an accepted probe under the active
     * load-check policy (see onInvalidate), or kNoSeq.
     */
    SeqNum probeVictimReference(Addr addr) const;

    LsqParams params_;
    MemoryOracle oracle_;
    std::deque<ShadowLoad> lq_;
    std::deque<ShadowStore> sq_;

    /**
     * Oldest probe-reported victim whose squash has not yet been
     * observed: any load >= this committing first is a missed squash.
     */
    SeqNum pendingProbeVictim_ = kNoSeq;

    std::uint64_t mismatches_ = 0;
    std::uint64_t opsChecked_ = 0;
    std::vector<CheckError> errors_;
    bool abortOnError_ = false;
};

} // namespace lsqscale

#endif // LSQSCALE_CHECK_LSQ_CHECKER_HH
