#include "check/lsq_checker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace lsqscale {

const char *
checkErrorKindName(CheckErrorKind kind)
{
    switch (kind) {
      case CheckErrorKind::WrongForwarder:
        return "wrong-forwarder";
      case CheckErrorKind::MissedForward:
        return "missed-forward";
      case CheckErrorKind::PhantomForward:
        return "phantom-forward";
      case CheckErrorKind::MissedStoreLoadViolation:
        return "missed-store-load-violation";
      case CheckErrorKind::PhantomStoreLoadViolation:
        return "phantom-store-load-violation";
      case CheckErrorKind::MissedStoreLoadDetection:
        return "missed-store-load-detection";
      case CheckErrorKind::PhantomLoadLoadViolation:
        return "phantom-load-load-violation";
      case CheckErrorKind::UndetectedLoadLoadOrder:
        return "undetected-load-load-order";
      case CheckErrorKind::BrokenProtocol:
        return "broken-protocol";
      case CheckErrorKind::MissedProbeSquash:
        return "missed-probe-squash";
      case CheckErrorKind::SpuriousProbeSquash:
        return "spurious-probe-squash";
    }
    return "unknown";
}

LsqChecker::LsqChecker(const LsqParams &params) : params_(params) {}

// ------------------------------------------------------ plumbing ------

void
LsqChecker::fail(CheckError err)
{
    ++mismatches_;
    if (errors_.size() < kMaxStoredErrors)
        errors_.push_back(err);
    if (abortOnError_)
        LSQ_PANIC("LSQ oracle mismatch: %s", report().c_str());
}

void
LsqChecker::protocolFail(SeqNum seq, Cycle cycle, const std::string &what)
{
    CheckError err;
    err.kind = CheckErrorKind::BrokenProtocol;
    err.seq = seq;
    err.cycle = cycle;
    err.detail = what;
    fail(err);
}

LsqChecker::ShadowLoad *
LsqChecker::findLoad(SeqNum seq)
{
    for (auto &e : lq_)
        if (e.seq == seq)
            return &e;
    return nullptr;
}

LsqChecker::ShadowStore *
LsqChecker::findStore(SeqNum seq)
{
    for (auto &e : sq_)
        if (e.seq == seq)
            return &e;
    return nullptr;
}

std::string
LsqChecker::report() const
{
    std::string out = strfmt(
        "%llu mismatch(es) over %llu checked ops "
        "(lq=%zu sq=%zu in flight)\n",
        static_cast<unsigned long long>(mismatches_),
        static_cast<unsigned long long>(opsChecked_), lq_.size(),
        sq_.size());
    for (const CheckError &e : errors_) {
        out += strfmt(
            "  [%s] seq=%llu pc=%#llx addr=%#llx cycle=%llu "
            "expected=%lld actual=%lld: %s\n",
            checkErrorKindName(e.kind),
            static_cast<unsigned long long>(e.seq),
            static_cast<unsigned long long>(e.pc),
            static_cast<unsigned long long>(e.addr),
            static_cast<unsigned long long>(e.cycle),
            e.expected == kNoSeq ? -1LL
                                 : static_cast<long long>(e.expected),
            e.actual == kNoSeq ? -1LL
                               : static_cast<long long>(e.actual),
            e.detail.c_str());
    }
    if (mismatches_ > errors_.size())
        out += strfmt("  ... %llu further mismatch(es) not stored\n",
                      static_cast<unsigned long long>(
                          mismatches_ - errors_.size()));
    return out;
}

// ------------------------------------------------------ reference -----

const LsqChecker::ShadowStore *
LsqChecker::expectedForwarder(SeqNum loadSeq, Addr addr) const
{
    // Figure 1, search 1: youngest older store with a valid matching
    // address. The shadow SQ is in program order, so scan from the
    // young end.
    for (auto it = sq_.rbegin(); it != sq_.rend(); ++it)
        if (it->seq < loadSeq && it->addrValid && it->addr == addr)
            return &*it;
    return nullptr;
}

const LsqChecker::ShadowLoad *
LsqChecker::expectedViolator(SeqNum storeSeq, Addr addr) const
{
    // Figure 1, search 2: oldest younger load that already executed
    // with a matching address and did not get its value from this
    // store or a younger one ("stale" rule of planStoreLqSearch).
    for (const auto &e : lq_) {
        if (e.seq <= storeSeq || !e.executed || e.addr != addr)
            continue;
        bool stale = e.forwardedFrom == kNoSeq ||
                     e.forwardedFrom < storeSeq;
        if (stale)
            return &e;
    }
    return nullptr;
}

// ------------------------------------------------------ allocation ----

void
LsqChecker::onAllocateLoad(SeqNum seq, Pc pc)
{
    if (!lq_.empty() && lq_.back().seq >= seq)
        protocolFail(seq, kNoCycle,
                     "load allocated out of program order");
    std::size_t cap = params_.totalLqEntries();
    std::size_t live = params_.combinedQueue ? lq_.size() + sq_.size()
                                             : lq_.size();
    if (live >= cap)
        protocolFail(seq, kNoCycle, "load allocated past LQ capacity");
    lq_.push_back(ShadowLoad{seq, pc, 0, false, kNoCycle, kNoSeq, false});
    ++opsChecked_;
}

void
LsqChecker::onAllocateStore(SeqNum seq, Pc pc)
{
    if (!sq_.empty() && sq_.back().seq >= seq)
        protocolFail(seq, kNoCycle,
                     "store allocated out of program order");
    std::size_t cap = params_.combinedQueue ? params_.totalLqEntries()
                                            : params_.totalSqEntries();
    std::size_t live = params_.combinedQueue ? lq_.size() + sq_.size()
                                             : sq_.size();
    if (live >= cap)
        protocolFail(seq, kNoCycle, "store allocated past SQ capacity");
    sq_.push_back(ShadowStore{seq, pc, 0, false, kNoCycle});
    ++opsChecked_;
}

// ------------------------------------------------------ load issue ----

void
LsqChecker::onLoadIssue(SeqNum seq, Addr addr, Cycle now,
                        const LoadIssueOutcome &out)
{
    if (out.status != LoadIssueStatus::Accepted)
        return;   // rejected issues leave the LSQ untouched

    ShadowLoad *e = findLoad(seq);
    if (!e) {
        protocolFail(seq, now, "issue of a load the shadow LQ lacks");
        return;
    }
    if (e->executed) {
        protocolFail(seq, now, "load issued twice without a squash");
        return;
    }

    // Cross-check the forwarding decision against the reference rule.
    const ShadowStore *ref = expectedForwarder(seq, addr);
    if (out.searchedSq) {
        if (ref && (!out.forwarded || out.forwardedFrom != ref->seq)) {
            CheckError err;
            err.kind = out.forwarded ? CheckErrorKind::WrongForwarder
                                     : CheckErrorKind::MissedForward;
            err.seq = seq;
            err.pc = e->pc;
            err.addr = addr;
            err.cycle = now;
            err.expected = ref->seq;
            err.actual = out.forwarded ? out.forwardedFrom : kNoSeq;
            err.detail = strfmt(
                "SQ search should forward from store seq=%llu "
                "(addr ready at cycle %llu)",
                static_cast<unsigned long long>(ref->seq),
                static_cast<unsigned long long>(ref->addrReadyCycle));
            fail(err);
        } else if (!ref && out.forwarded) {
            CheckError err;
            err.kind = CheckErrorKind::PhantomForward;
            err.seq = seq;
            err.pc = e->pc;
            err.addr = addr;
            err.cycle = now;
            err.actual = out.forwardedFrom;
            err.detail = "no older addr-valid matching store in the "
                         "shadow SQ";
            fail(err);
        }
    } else if (out.forwarded) {
        CheckError err;
        err.kind = CheckErrorKind::PhantomForward;
        err.seq = seq;
        err.pc = e->pc;
        err.addr = addr;
        err.cycle = now;
        err.actual = out.forwardedFrom;
        err.detail = "load forwarded without searching the SQ";
        fail(err);
    }

    // Commit the shadow execution *before* vetting the load-load
    // reports: the issuing load itself is a legal older partner for a
    // violation found by its own (immediate) ordering search.
    e->addr = addr;
    e->executed = true;
    e->executeCycle = now;
    e->searchedSq = out.searchedSq;
    e->forwardedFrom = out.forwarded ? out.forwardedFrom : kNoSeq;

    // Every reported load-load violation must name a genuine violating
    // pair: a younger executed load whose value was obtained earlier
    // than some older load's (Section 2.2 ordering rule). The paired
    // older load is either the issuing load or a load the NILP just
    // passed, so membership is checked against the whole shadow LQ.
    for (SeqNum v : out.llViolations) {
        const ShadowLoad *young = findLoad(v);
        bool genuine = false;
        if (young && young->executed) {
            for (const auto &old : lq_) {
                if (old.seq >= young->seq)
                    break;
                if (old.executed && old.addr == young->addr &&
                    young->executeCycle < old.executeCycle) {
                    genuine = true;
                    break;
                }
            }
        }
        if (!genuine) {
            CheckError err;
            err.kind = CheckErrorKind::PhantomLoadLoadViolation;
            err.seq = seq;
            err.pc = e->pc;
            err.addr = addr;
            err.cycle = now;
            err.actual = v;
            err.detail =
                young ? strfmt("reported violator seq=%llu has no "
                               "older same-address load that executed "
                               "later",
                               static_cast<unsigned long long>(v))
                      : strfmt("reported violator seq=%llu is not in "
                               "the shadow LQ",
                               static_cast<unsigned long long>(v));
            fail(err);
        }
    }
    ++opsChecked_;
}

// ------------------------------------------------------ store side ----

void
LsqChecker::checkStoreSearch(SeqNum seq, Addr addr, Cycle now,
                             const StoreSearchOutcome &out,
                             const char *when)
{
    const ShadowLoad *ref = expectedViolator(seq, addr);
    SeqNum expect = ref ? ref->seq : kNoSeq;
    if (expect == out.violationLoad)
        return;
    CheckError err;
    err.kind = expect == kNoSeq
                   ? CheckErrorKind::PhantomStoreLoadViolation
                   : CheckErrorKind::MissedStoreLoadDetection;
    err.seq = seq;
    err.addr = addr;
    err.cycle = now;
    err.expected = expect;
    err.actual = out.violationLoad;
    err.detail = strfmt("%s LQ search: reference violator %lld, "
                        "reported %lld",
                        when,
                        expect == kNoSeq
                            ? -1LL
                            : static_cast<long long>(expect),
                        out.violationLoad == kNoSeq
                            ? -1LL
                            : static_cast<long long>(out.violationLoad));
    fail(err);
}

void
LsqChecker::onStoreAddrReady(SeqNum seq, Addr addr, Cycle now,
                             const StoreSearchOutcome &out)
{
    if (!out.accepted)
        return;   // no port: the Lsq did not mutate

    ShadowStore *s = findStore(seq);
    if (!s) {
        protocolFail(seq, now, "AGEN of a store the shadow SQ lacks");
        return;
    }
    if (s->addrValid) {
        protocolFail(seq, now, "store address exposed twice");
        return;
    }

    // Conventional scheme: the AGEN doubles as the violation search.
    // Pair scheme (checkViolationsAtCommit) performs no search here.
    if (!params_.checkViolationsAtCommit)
        checkStoreSearch(seq, addr, now, out, "execute-time");

    s->addr = addr;
    s->addrValid = true;
    s->addrReadyCycle = now;
    ++opsChecked_;
}

void
LsqChecker::onStoreCommit(SeqNum seq, Cycle now,
                          const StoreSearchOutcome &out)
{
    if (!out.accepted)
        return;   // delayed commit: nothing happened

    if (sq_.empty() || sq_.front().seq != seq) {
        protocolFail(seq, now, "store commit out of SQ order");
        return;
    }
    ShadowStore s = sq_.front();
    sq_.pop_front();
    if (!s.addrValid) {
        protocolFail(seq, now, "store committed without an address");
        return;
    }

    // Pair scheme: violation detection happens here instead.
    if (params_.checkViolationsAtCommit)
        checkStoreSearch(seq, s.addr, now, out, "commit-time");

    if (!oracle_.commitStore(seq, s.pc, s.addr, s.addrReadyCycle, now))
        protocolFail(seq, now, "memory ops retired out of program order");
    ++opsChecked_;
}

// ------------------------------------------------------ load commit ---

void
LsqChecker::onLoadCommit(SeqNum seq)
{
    if (lq_.empty() || lq_.front().seq != seq) {
        protocolFail(seq, kNoCycle, "load commit out of LQ order");
        return;
    }
    ShadowLoad e = lq_.front();
    lq_.pop_front();
    if (!e.executed) {
        protocolFail(seq, kNoCycle, "unexecuted load committed");
        return;
    }

    if (pendingProbeVictim_ != kNoSeq && seq >= pendingProbeVictim_) {
        CheckError err;
        err.kind = CheckErrorKind::MissedProbeSquash;
        err.seq = seq;
        err.pc = e.pc;
        err.addr = e.addr;
        err.cycle = e.executeCycle;
        err.expected = pendingProbeVictim_;
        err.detail = strfmt(
            "probe victim seq=%llu committed without an intervening "
            "squash",
            static_cast<unsigned long long>(pendingProbeVictim_));
        fail(err);
        pendingProbeVictim_ = kNoSeq;
    }

    // The decisive end-to-end check: resolve the load's committed
    // (final) execution against the golden memory image. Commits are
    // in program order, so the image's last writer of this address is
    // exactly the youngest older store — the architecturally required
    // value source.
    const MemoryOracle::StoreRecord *g = oracle_.lastStore(e.addr);
    if (g == nullptr) {
        if (e.forwardedFrom != kNoSeq) {
            CheckError err;
            err.kind = CheckErrorKind::PhantomForward;
            err.seq = seq;
            err.pc = e.pc;
            err.addr = e.addr;
            err.cycle = e.executeCycle;
            err.actual = e.forwardedFrom;
            err.detail = "committed a forwarded value but no older "
                         "store ever wrote this address";
            fail(err);
        }
    } else if (e.forwardedFrom != g->seq) {
        if (e.forwardedFrom != kNoSeq) {
            CheckError err;
            err.kind = CheckErrorKind::WrongForwarder;
            err.seq = seq;
            err.pc = e.pc;
            err.addr = e.addr;
            err.cycle = e.executeCycle;
            err.expected = g->seq;
            err.actual = e.forwardedFrom;
            err.detail = strfmt(
                "committed value came from store seq=%llu but the "
                "youngest older writer is seq=%llu (pc=%#llx)",
                static_cast<unsigned long long>(e.forwardedFrom),
                static_cast<unsigned long long>(g->seq),
                static_cast<unsigned long long>(g->pc));
            fail(err);
        } else if (g->commitCycle > e.executeCycle) {
            // Read memory before the correct writer reached it, and
            // never forwarded: the value is stale. Distinguish a
            // skipped/broken forward (address was visible in the SQ)
            // from a missed premature-load squash (it was not).
            CheckError err;
            err.kind = g->addrReadyCycle <= e.executeCycle
                           ? CheckErrorKind::MissedForward
                           : CheckErrorKind::MissedStoreLoadViolation;
            err.seq = seq;
            err.pc = e.pc;
            err.addr = e.addr;
            err.cycle = e.executeCycle;
            err.expected = g->seq;
            err.detail = strfmt(
                "load executed at cycle %llu but store seq=%llu "
                "(pc=%#llx, addr ready %llu) only reached memory at "
                "cycle %llu and never forwarded",
                static_cast<unsigned long long>(e.executeCycle),
                static_cast<unsigned long long>(g->seq),
                static_cast<unsigned long long>(g->pc),
                static_cast<unsigned long long>(g->addrReadyCycle),
                static_cast<unsigned long long>(g->commitCycle));
            fail(err);
        }
    }

    // End-to-end coherence-ordering check: a committed, non-forwarded
    // load must not have read a value an already-visible remote write
    // superseded *before* some older load executed. Commits are in
    // program order, so the oracle's max committed-load execute cycle
    // is exactly the latest execution among the older loads; a remote
    // write to this line visible strictly between this load's execute
    // and that horizon means an older load observed newer memory than
    // this (younger) load — the probe machinery owed us a squash.
    if (params_.loadCheck != LoadCheckPolicy::None &&
        e.forwardedFrom == kNoSeq &&
        oracle_.remoteWriteBetween(e.addr, e.executeCycle,
                                   oracle_.maxCommittedLoadExec())) {
        CheckError err;
        err.kind = CheckErrorKind::MissedProbeSquash;
        err.seq = seq;
        err.pc = e.pc;
        err.addr = e.addr;
        err.cycle = e.executeCycle;
        err.detail = strfmt(
            "committed load executed at cycle %llu, but a remote write "
            "to its line became visible before an older load's final "
            "execution (cycle %llu) and no squash re-executed it",
            static_cast<unsigned long long>(e.executeCycle),
            static_cast<unsigned long long>(
                oracle_.maxCommittedLoadExec()));
        fail(err);
    }

    // Load-load ordering: when a policy enforces it, committed
    // same-address loads must have non-decreasing final execute cycles
    // (a detected violation re-executes the younger load later).
    if (params_.loadCheck != LoadCheckPolicy::None) {
        const MemoryOracle::LoadRecord *older = oracle_.lastLoad(e.addr);
        if (older && older->executeCycle > e.executeCycle) {
            CheckError err;
            err.kind = CheckErrorKind::UndetectedLoadLoadOrder;
            err.seq = seq;
            err.pc = e.pc;
            err.addr = e.addr;
            err.cycle = e.executeCycle;
            err.expected = older->seq;
            err.detail = strfmt(
                "younger load executed at cycle %llu, older load "
                "seq=%llu (pc=%#llx) executed at cycle %llu — the "
                "ordering check never squashed the younger load",
                static_cast<unsigned long long>(e.executeCycle),
                static_cast<unsigned long long>(older->seq),
                static_cast<unsigned long long>(older->pc),
                static_cast<unsigned long long>(older->executeCycle));
            fail(err);
        }
    }

    if (!oracle_.commitLoad(seq, e.pc, e.addr, e.executeCycle))
        protocolFail(seq, kNoCycle,
                     "memory ops retired out of program order");
    ++opsChecked_;
}

// ------------------------------------------------------ the rest ------

SeqNum
LsqChecker::probeVictimReference(Addr addr) const
{
    if (params_.loadCheck == LoadCheckPolicy::LoadBuffer ||
        params_.loadCheck == LoadCheckPolicy::InOrder) {
        // Load-buffer snoop policies squash only *vulnerable* loads:
        // executed while an older load is still non-executed (exactly
        // the load buffer's residents — an entry is inserted when a
        // load issues past a non-issued older load and released once
        // the NILP passes it, i.e. once every older load has issued).
        // Reference: the oldest such load matching the address.
        bool sawNonExecuted = false;
        for (const auto &e : lq_) {
            if (!e.executed) {
                sawNonExecuted = true;
                continue;
            }
            if (sawNonExecuted && e.addr == addr)
                return e.seq;
        }
        return kNoSeq;
    }
    // Conventional policies walk the LQ: oldest outstanding
    // (executed) load to the address — the R10000-style target.
    for (const auto &e : lq_) {
        if (e.executed && e.addr == addr)
            return e.seq;
    }
    return kNoSeq;
}

void
LsqChecker::onInvalidate(Addr addr, Cycle now,
                         const StoreSearchOutcome &out)
{
    if (!out.accepted)
        return;
    // An accepted delivery is the write's global visibility point:
    // remember it so onLoadCommit can re-derive every squash this
    // probe should have caused from first principles.
    oracle_.noteRemoteWrite(addr, now);

    SeqNum expect = probeVictimReference(addr);
    if (expect != out.violationLoad) {
        CheckError err;
        err.kind = expect == kNoSeq ||
                           (out.violationLoad != kNoSeq &&
                            out.violationLoad < expect)
                       ? CheckErrorKind::SpuriousProbeSquash
                       : CheckErrorKind::MissedProbeSquash;
        err.seq = out.violationLoad;
        err.addr = addr;
        err.cycle = now;
        err.expected = expect;
        err.actual = out.violationLoad;
        err.detail = "probe squash target disagreed with the "
                     "vulnerable-load rule for the active load-check "
                     "policy";
        fail(err);
    } else if (expect != kNoSeq) {
        // The core must now squash from the victim; remember the
        // obligation so a commit slipping past it is caught.
        if (pendingProbeVictim_ == kNoSeq ||
            expect < pendingProbeVictim_)
            pendingProbeVictim_ = expect;
    }
    ++opsChecked_;
}

void
LsqChecker::onSquash(SeqNum from)
{
    while (!lq_.empty() && lq_.back().seq >= from)
        lq_.pop_back();
    while (!sq_.empty() && sq_.back().seq >= from)
        sq_.pop_back();
    if (pendingProbeVictim_ != kNoSeq && from <= pendingProbeVictim_)
        pendingProbeVictim_ = kNoSeq;   // obligation discharged
}

} // namespace lsqscale
