#include "check/memory_oracle.hh"

namespace lsqscale {

bool
MemoryOracle::advanceCommitOrder(SeqNum seq)
{
    bool ok = !anyCommit_ || seq > lastCommit_;
    lastCommit_ = seq;
    anyCommit_ = true;
    ++commits_;
    return ok;
}

bool
MemoryOracle::commitStore(SeqNum seq, Pc pc, Addr addr,
                          Cycle addrReadyCycle, Cycle commitCycle)
{
    image_[addr] = StoreRecord{seq, pc, addrReadyCycle, commitCycle};
    return advanceCommitOrder(seq);
}

bool
MemoryOracle::commitLoad(SeqNum seq, Pc pc, Addr addr,
                         Cycle executeCycle)
{
    loads_[addr] = LoadRecord{seq, pc, executeCycle};
    return advanceCommitOrder(seq);
}

const MemoryOracle::StoreRecord *
MemoryOracle::lastStore(Addr addr) const
{
    auto it = image_.find(addr);
    return it == image_.end() ? nullptr : &it->second;
}

const MemoryOracle::LoadRecord *
MemoryOracle::lastLoad(Addr addr) const
{
    auto it = loads_.find(addr);
    return it == loads_.end() ? nullptr : &it->second;
}

} // namespace lsqscale
