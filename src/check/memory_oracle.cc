#include "check/memory_oracle.hh"

#include <algorithm>

namespace lsqscale {

bool
MemoryOracle::advanceCommitOrder(SeqNum seq)
{
    bool ok = !anyCommit_ || seq > lastCommit_;
    lastCommit_ = seq;
    anyCommit_ = true;
    ++commits_;
    return ok;
}

bool
MemoryOracle::commitStore(SeqNum seq, Pc pc, Addr addr,
                          Cycle addrReadyCycle, Cycle commitCycle)
{
    image_[addr] = StoreRecord{seq, pc, addrReadyCycle, commitCycle};
    return advanceCommitOrder(seq);
}

bool
MemoryOracle::commitLoad(SeqNum seq, Pc pc, Addr addr,
                         Cycle executeCycle)
{
    loads_[addr] = LoadRecord{seq, pc, executeCycle};
    if (maxLoadExec_ == kNoCycle || executeCycle > maxLoadExec_)
        maxLoadExec_ = executeCycle;
    return advanceCommitOrder(seq);
}

void
MemoryOracle::noteRemoteWrite(Addr addr, Cycle visibleAt)
{
    remoteWrites_[addr].push_back(visibleAt);
}

bool
MemoryOracle::remoteWriteBetween(Addr addr, Cycle after,
                                 Cycle before) const
{
    if (before == kNoCycle || after + 1 >= before)
        return false;
    auto it = remoteWrites_.find(addr);
    if (it == remoteWrites_.end())
        return false;
    // Deliveries to one line are in order, so the vector is sorted.
    auto lo = std::upper_bound(it->second.begin(), it->second.end(),
                               after);
    return lo != it->second.end() && *lo < before;
}

const MemoryOracle::StoreRecord *
MemoryOracle::lastStore(Addr addr) const
{
    auto it = image_.find(addr);
    return it == image_.end() ? nullptr : &it->second;
}

const MemoryOracle::LoadRecord *
MemoryOracle::lastLoad(Addr addr) const
{
    auto it = loads_.find(addr);
    return it == loads_.end() ? nullptr : &it->second;
}

} // namespace lsqscale
