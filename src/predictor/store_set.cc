#include "predictor/store_set.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace lsqscale {

StoreSetPredictor::StoreSetPredictor(const StoreSetParams &params)
    : params_(params)
{
    if (!params_.aliasFree) {
        LSQ_ASSERT((params_.ssitEntries & (params_.ssitEntries - 1)) == 0,
                   "SSIT entries must be a power of two");
        ssit_.assign(params_.ssitEntries, kNoSsid);
        lfstTable_.assign(params_.lfstEntries,
                          LfstEntry(params_.counterBits));
    }
}

unsigned
StoreSetPredictor::ssitIndex(Pc pc) const
{
    // Fold the word-aligned PC into the table.
    std::uint64_t x = pc >> 2;
    x ^= x >> 13;
    return static_cast<unsigned>(x) & (params_.ssitEntries - 1);
}

std::uint16_t
StoreSetPredictor::ssitLookup(Pc pc) const
{
    if (params_.aliasFree) {
        auto it = exactSsit_.find(pc);
        return it == exactSsit_.end() ? kNoSsid : it->second;
    }
    return ssit_[ssitIndex(pc)];
}

void
StoreSetPredictor::ssitAssign(Pc pc, std::uint16_t ssid)
{
    if (params_.aliasFree)
        exactSsit_[pc] = ssid;
    else
        ssit_[ssitIndex(pc)] = ssid;
}

StoreSetPredictor::LfstEntry *
StoreSetPredictor::lfst(std::uint16_t ssid)
{
    if (ssid == kNoSsid)
        return nullptr;
    if (params_.aliasFree) {
        auto it = exactLfst_.find(ssid);
        if (it == exactLfst_.end())
            it = exactLfst_.emplace(ssid,
                                    LfstEntry(params_.counterBits)).first;
        return &it->second;
    }
    return &lfstTable_[ssid % params_.lfstEntries];
}

const StoreSetPredictor::LfstEntry *
StoreSetPredictor::lfst(std::uint16_t ssid) const
{
    return const_cast<StoreSetPredictor *>(this)->lfst(ssid);
}

std::uint16_t
StoreSetPredictor::allocateSsid(Pc pc)
{
    if (params_.aliasFree) {
        std::uint16_t s = nextExactSsid_++;
        if (nextExactSsid_ == kNoSsid)
            nextExactSsid_ = 0;
        return s;
    }
    // Derive the SSID from the load's SSIT slot, as in Chrysos/Emer.
    return static_cast<std::uint16_t>(ssitIndex(pc) %
                                      params_.lfstEntries);
}

void
StoreSetPredictor::clearTables()
{
    ++tableClears_;
    if (params_.aliasFree) {
        exactSsit_.clear();
        exactLfst_.clear();
    } else {
        std::fill(ssit_.begin(), ssit_.end(), kNoSsid);
        std::fill(lfstTable_.begin(), lfstTable_.end(),
                  LfstEntry(params_.counterBits));
    }
}

void
StoreSetPredictor::injectStateCorruption(std::uint64_t seed)
{
    // Reassign a pseudo-random subset of SSIT slots to pseudo-random
    // store sets. Wrong merges cost extra SQ searches and squashes but
    // violate nothing — a silent, timing-only fault (see the header).
    Rng rng(Rng::mix(seed));
    if (params_.aliasFree) {
        for (auto &kv : exactSsit_)
            if (rng.chance(0.25))
                kv.second = static_cast<std::uint16_t>(
                    rng.below(kNoSsid));
    } else {
        for (auto &slot : ssit_)
            if (rng.chance(0.25))
                slot = static_cast<std::uint16_t>(
                    rng.below(params_.lfstEntries));
    }
    LSQ_WARN("inject: scrambled store-set tables (seed %llu)",
             static_cast<unsigned long long>(seed));
}

void
StoreSetPredictor::countAccess()
{
    if (params_.clearInterval == 0)
        return;
    if (++accesses_ >= params_.clearInterval) {
        accesses_ = 0;
        clearTables();
    }
}

LoadPrediction
StoreSetPredictor::loadFetch(Pc loadPc)
{
    countAccess();
    LoadPrediction pred;
    pred.ssid = ssitLookup(loadPc);
    if (!pred.hasSet())
        return pred;
    const LfstEntry *e = lfst(pred.ssid);
    if (e->valid)
        pred.waitForStore = e->lastStore;
    pred.mustSearchStoreQueue = !e->counter.isZero();
    return pred;
}

StorePrediction
StoreSetPredictor::storeFetch(Pc storePc, SeqNum storeSeq)
{
    countAccess();
    StorePrediction tag;
    tag.ssid = ssitLookup(storePc);
    if (!tag.hasSet())
        return tag;
    LfstEntry *e = lfst(tag.ssid);
    if (e->valid)
        tag.waitForStore = e->lastStore;
    e->valid = true;
    e->lastStore = storeSeq;
    e->counter.increment();
    return tag;
}

void
StoreSetPredictor::storeIssued(const StorePrediction &tag, SeqNum storeSeq)
{
    if (!tag.hasSet())
        return;
    LfstEntry *e = lfst(tag.ssid);
    if (e->valid && e->lastStore == storeSeq)
        e->valid = false;
}

void
StoreSetPredictor::storeCommitted(const StorePrediction &tag)
{
    if (!tag.hasSet())
        return;
    lfst(tag.ssid)->counter.decrement();
}

void
StoreSetPredictor::storeSquashed(const StorePrediction &tag,
                                 SeqNum storeSeq)
{
    if (!tag.hasSet())
        return;
    LfstEntry *e = lfst(tag.ssid);
    e->counter.decrement();
    if (e->valid && e->lastStore == storeSeq)
        e->valid = false;
}

bool
StoreSetPredictor::storeStillPending(std::uint16_t ssid,
                                     SeqNum waitForStore) const
{
    if (ssid == kNoSsid || waitForStore == kNoSeq)
        return false;
    const LfstEntry *e = lfst(ssid);
    return e->valid && e->lastStore == waitForStore;
}

bool
StoreSetPredictor::counterNonZero(std::uint16_t ssid) const
{
    if (ssid == kNoSsid)
        return false;
    return !lfst(ssid)->counter.isZero();
}

void
StoreSetPredictor::trainPair(Pc storePc, Pc loadPc)
{
    ++pairsTrained_;
    std::uint16_t sSet = ssitLookup(storePc);
    std::uint16_t lSet = ssitLookup(loadPc);

    if (sSet == kNoSsid && lSet == kNoSsid) {
        std::uint16_t ssid = allocateSsid(loadPc);
        ssitAssign(storePc, ssid);
        ssitAssign(loadPc, ssid);
    } else if (sSet == kNoSsid) {
        ssitAssign(storePc, lSet);
    } else if (lSet == kNoSsid) {
        ssitAssign(loadPc, sSet);
    } else if (sSet != lSet) {
        // Merge: the numerically smaller SSID wins (Chrysos/Emer).
        std::uint16_t winner = sSet < lSet ? sSet : lSet;
        ssitAssign(storePc, winner);
        ssitAssign(loadPc, winner);
    }
}

// ------------------------------------------------ checkpointing -----

namespace {

void
saveLfstEntry(SerialWriter &w, bool valid, SeqNum lastStore,
              std::uint8_t counter)
{
    w.b(valid);
    w.u64(lastStore);
    w.u8(counter);
}

} // namespace

void
StoreSetPredictor::saveState(SerialWriter &w) const
{
    w.u64(ssit_.size());
    for (std::uint16_t ssid : ssit_)
        w.u16(ssid);
    w.u64(lfstTable_.size());
    for (const LfstEntry &e : lfstTable_)
        saveLfstEntry(w, e.valid, e.lastStore, e.counter.value());

    // Exact (alias-free) tables, sorted for deterministic bytes.
    std::vector<Pc> pcs;
    pcs.reserve(exactSsit_.size());
    for (const auto &kv : exactSsit_)
        pcs.push_back(kv.first);
    std::sort(pcs.begin(), pcs.end());
    w.u64(pcs.size());
    for (Pc pc : pcs) {
        w.u64(pc);
        w.u16(exactSsit_.at(pc));
    }
    std::vector<std::uint16_t> ssids;
    ssids.reserve(exactLfst_.size());
    for (const auto &kv : exactLfst_)
        ssids.push_back(kv.first);
    std::sort(ssids.begin(), ssids.end());
    w.u64(ssids.size());
    for (std::uint16_t ssid : ssids) {
        const LfstEntry &e = exactLfst_.at(ssid);
        w.u16(ssid);
        saveLfstEntry(w, e.valid, e.lastStore, e.counter.value());
    }
    w.u16(nextExactSsid_);

    w.u64(accesses_);
    w.u64(pairsTrained_);
    w.u64(tableClears_);
}

void
StoreSetPredictor::loadState(SerialReader &r)
{
    std::uint64_t ssitSize = r.u64();
    if (ssitSize != ssit_.size())
        throw SerialError("SSIT size mismatch "
                          "(checkpoint from a different config?)");
    for (std::uint16_t &ssid : ssit_)
        ssid = r.u16();
    std::uint64_t lfstSize = r.u64();
    if (lfstSize != lfstTable_.size())
        throw SerialError("LFST size mismatch "
                          "(checkpoint from a different config?)");
    for (LfstEntry &e : lfstTable_) {
        e.valid = r.b();
        e.lastStore = r.u64();
        e.counter.set(r.u8());
    }

    exactSsit_.clear();
    std::uint64_t exactPcs = r.u64();
    for (std::uint64_t i = 0; i < exactPcs; ++i) {
        Pc pc = r.u64();
        exactSsit_[pc] = r.u16();
    }
    exactLfst_.clear();
    std::uint64_t exactSets = r.u64();
    for (std::uint64_t i = 0; i < exactSets; ++i) {
        std::uint16_t ssid = r.u16();
        LfstEntry e(params_.counterBits);
        e.valid = r.b();
        e.lastStore = r.u64();
        e.counter.set(r.u8());
        exactLfst_.emplace(ssid, e);
    }
    nextExactSsid_ = r.u16();

    accesses_ = r.u64();
    pairsTrained_ = r.u64();
    tableClears_ = r.u64();
}

} // namespace lsqscale
