/**
 * @file
 * Hybrid GAg + PAg branch predictor (Table 1 of the paper).
 *
 * GAg: a single global history register indexes a pattern history
 * table of 2-bit counters. PAg: a per-address branch history table
 * indexes a shared pattern history table. A 2-bit chooser per branch
 * address selects between them; all three tables have 4K entries.
 */

#ifndef LSQSCALE_PREDICTOR_BRANCH_PREDICTOR_HH
#define LSQSCALE_PREDICTOR_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"
#include "sample/serialize.hh"

namespace lsqscale {

/** Which direction predictor the core instantiates. */
enum class BranchPredictorKind : std::uint8_t {
    Hybrid,   ///< GAg + PAg with a chooser (Table 1, the default)
    GAg,      ///< global-history component alone
    PAg,      ///< per-address-history component alone
    Bimodal,  ///< classic per-PC 2-bit counters (ablation baseline)
};

/** Configuration for the branch predictors. */
struct BranchPredictorParams
{
    BranchPredictorKind kind = BranchPredictorKind::Hybrid;
    unsigned tableEntries = 4096;   ///< GAg PHT, PAg PHT, chooser
    unsigned historyBits = 12;
    unsigned bhtEntries = 4096;     ///< PAg per-address history table
};

/** GAg component: global history -> PHT. */
class GAgPredictor
{
  public:
    explicit GAgPredictor(const BranchPredictorParams &params);

    bool predict(Pc pc) const;
    void update(Pc pc, bool taken);

    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    unsigned index(Pc pc) const;

    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned histMask_;
    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned tableMask_;
    unsigned history_ = 0;
    std::vector<SatCounter> pht_;
};

/** PAg component: per-address history -> shared PHT. */
class PAgPredictor
{
  public:
    explicit PAgPredictor(const BranchPredictorParams &params);

    bool predict(Pc pc) const;
    void update(Pc pc, bool taken);

    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    unsigned bhtIndex(Pc pc) const;
    unsigned phtIndex(Pc pc) const;

    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned histMask_;
    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned tableMask_;
    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned bhtMask_;
    std::vector<unsigned> bht_;
    std::vector<SatCounter> pht_;
};

/** Bimodal component: per-PC 2-bit counters, no history. */
class BimodalPredictor
{
  public:
    explicit BimodalPredictor(const BranchPredictorParams &params);

    bool predict(Pc pc) const;
    void update(Pc pc, bool taken);

    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned tableMask_;
    std::vector<SatCounter> pht_;
};

/**
 * The direction predictor the core uses: by default the hybrid
 * (chooser picks GAg or PAg per branch); `kind` selects a single
 * component for ablation studies.
 */
class HybridBranchPredictor
{
  public:
    explicit HybridBranchPredictor(
        const BranchPredictorParams &params = BranchPredictorParams());

    /** Direction prediction for the branch at @p pc. */
    bool predict(Pc pc) const;

    /**
     * Train with the resolved outcome. Updates both components and
     * moves the chooser toward whichever component was correct.
     */
    void update(Pc pc, bool taken);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Convenience: predict, count accuracy, then train. */
    bool
    predictAndUpdate(Pc pc, bool taken)
    {
        bool pred = predict(pc);
        ++lookups_;
        if (pred != taken)
            ++mispredicts_;
        update(pc, taken);
        return pred;
    }

    /** Serialize all tables/history (checkpointing, docs/SAMPLING.md). */
    void saveState(SerialWriter &w) const;
    /** Restore state written by saveState (geometry must match). */
    void loadState(SerialReader &r);

  private:
    unsigned chooserIndex(Pc pc) const;

    // lsqlint: no-serialize(construction config, fixed for the run)
    BranchPredictorKind kind_;
    GAgPredictor gag_;
    PAgPredictor pag_;
    BimodalPredictor bimodal_;
    // lsqlint: no-serialize(derived from table geometry at construction)
    unsigned chooserMask_;
    std::vector<SatCounter> chooser_;   ///< high = prefer PAg

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace lsqscale

#endif // LSQSCALE_PREDICTOR_BRANCH_PREDICTOR_HH
