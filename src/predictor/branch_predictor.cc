#include "predictor/branch_predictor.hh"

#include "common/logging.hh"

namespace lsqscale {

namespace {

unsigned
maskFor(unsigned entries)
{
    LSQ_ASSERT(entries && (entries & (entries - 1)) == 0,
               "table entries must be a power of two, got %u", entries);
    return entries - 1;
}

} // namespace

// ------------------------------------------------------------- GAg ----

GAgPredictor::GAgPredictor(const BranchPredictorParams &params)
    : histMask_((1u << params.historyBits) - 1),
      tableMask_(maskFor(params.tableEntries)),
      pht_(params.tableEntries, SatCounter(2, 1))
{
}

unsigned
GAgPredictor::index(Pc pc) const
{
    return (history_ ^ static_cast<unsigned>(pc >> 2)) & tableMask_;
}

bool
GAgPredictor::predict(Pc pc) const
{
    return pht_[index(pc)].taken();
}

void
GAgPredictor::update(Pc pc, bool taken)
{
    SatCounter &ctr = pht_[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history_ = ((history_ << 1) | (taken ? 1 : 0)) & histMask_;
}

// ------------------------------------------------------------- PAg ----

PAgPredictor::PAgPredictor(const BranchPredictorParams &params)
    : histMask_((1u << params.historyBits) - 1),
      tableMask_(maskFor(params.tableEntries)),
      bhtMask_(maskFor(params.bhtEntries)),
      bht_(params.bhtEntries, 0),
      pht_(params.tableEntries, SatCounter(2, 1))
{
}

unsigned
PAgPredictor::bhtIndex(Pc pc) const
{
    return static_cast<unsigned>(pc >> 2) & bhtMask_;
}

unsigned
PAgPredictor::phtIndex(Pc pc) const
{
    return bht_[bhtIndex(pc)] & tableMask_;
}

bool
PAgPredictor::predict(Pc pc) const
{
    return pht_[phtIndex(pc)].taken();
}

void
PAgPredictor::update(Pc pc, bool taken)
{
    SatCounter &ctr = pht_[phtIndex(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    unsigned &hist = bht_[bhtIndex(pc)];
    hist = ((hist << 1) | (taken ? 1 : 0)) & histMask_;
}

// --------------------------------------------------------- bimodal ----

BimodalPredictor::BimodalPredictor(const BranchPredictorParams &params)
    : tableMask_(maskFor(params.tableEntries)),
      pht_(params.tableEntries, SatCounter(2, 1))
{
}

bool
BimodalPredictor::predict(Pc pc) const
{
    return pht_[static_cast<unsigned>(pc >> 2) & tableMask_].taken();
}

void
BimodalPredictor::update(Pc pc, bool taken)
{
    SatCounter &ctr =
        pht_[static_cast<unsigned>(pc >> 2) & tableMask_];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

// ---------------------------------------------------------- hybrid ----

HybridBranchPredictor::HybridBranchPredictor(
    const BranchPredictorParams &params)
    : kind_(params.kind), gag_(params), pag_(params), bimodal_(params),
      chooserMask_(maskFor(params.tableEntries)),
      chooser_(params.tableEntries, SatCounter(2, 2))
{
}

unsigned
HybridBranchPredictor::chooserIndex(Pc pc) const
{
    return static_cast<unsigned>(pc >> 2) & chooserMask_;
}

bool
HybridBranchPredictor::predict(Pc pc) const
{
    switch (kind_) {
      case BranchPredictorKind::GAg:
        return gag_.predict(pc);
      case BranchPredictorKind::PAg:
        return pag_.predict(pc);
      case BranchPredictorKind::Bimodal:
        return bimodal_.predict(pc);
      case BranchPredictorKind::Hybrid:
        break;
    }
    bool preferPag = chooser_[chooserIndex(pc)].taken();
    return preferPag ? pag_.predict(pc) : gag_.predict(pc);
}

void
HybridBranchPredictor::update(Pc pc, bool taken)
{
    bool gagRight = gag_.predict(pc) == taken;
    bool pagRight = pag_.predict(pc) == taken;
    SatCounter &ch = chooser_[chooserIndex(pc)];
    if (pagRight && !gagRight)
        ch.increment();
    else if (gagRight && !pagRight)
        ch.decrement();
    gag_.update(pc, taken);
    pag_.update(pc, taken);
    bimodal_.update(pc, taken);
}

// ------------------------------------------------ checkpointing -----

namespace {

void
savePht(SerialWriter &w, const std::vector<SatCounter> &pht)
{
    w.u64(pht.size());
    for (const SatCounter &c : pht)
        w.u8(c.value());
}

void
loadPht(SerialReader &r, std::vector<SatCounter> &pht)
{
    std::uint64_t n = r.u64();
    if (n != pht.size())
        throw SerialError("predictor table size mismatch "
                          "(checkpoint from a different config?)");
    for (SatCounter &c : pht)
        c.set(r.u8());
}

} // namespace

void
GAgPredictor::saveState(SerialWriter &w) const
{
    w.u32(history_);
    savePht(w, pht_);
}

void
GAgPredictor::loadState(SerialReader &r)
{
    history_ = r.u32() & histMask_;
    loadPht(r, pht_);
}

void
PAgPredictor::saveState(SerialWriter &w) const
{
    w.u64(bht_.size());
    for (unsigned h : bht_)
        w.u32(h);
    savePht(w, pht_);
}

void
PAgPredictor::loadState(SerialReader &r)
{
    std::uint64_t n = r.u64();
    if (n != bht_.size())
        throw SerialError("predictor table size mismatch "
                          "(checkpoint from a different config?)");
    for (unsigned &h : bht_)
        h = r.u32() & histMask_;
    loadPht(r, pht_);
}

void
BimodalPredictor::saveState(SerialWriter &w) const
{
    savePht(w, pht_);
}

void
BimodalPredictor::loadState(SerialReader &r)
{
    loadPht(r, pht_);
}

void
HybridBranchPredictor::saveState(SerialWriter &w) const
{
    gag_.saveState(w);
    pag_.saveState(w);
    bimodal_.saveState(w);
    savePht(w, chooser_);
    w.u64(lookups_);
    w.u64(mispredicts_);
}

void
HybridBranchPredictor::loadState(SerialReader &r)
{
    gag_.loadState(r);
    pag_.loadState(r);
    bimodal_.loadState(r);
    loadPht(r, chooser_);
    lookups_ = r.u64();
    mispredicts_ = r.u64();
}

} // namespace lsqscale
