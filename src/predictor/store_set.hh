/**
 * @file
 * Store-set predictor with the paper's store-load pair extension.
 *
 * Structures follow Chrysos & Emer (ISCA'98) and Section 2.1 of the
 * paper, with the two predictors sharing physical tables (the paper's
 * "low cost implementation", Section 2.1.2):
 *
 *  - SSIT (Store Set ID Table, 4K): indexed by instruction PC, maps a
 *    load or store to its store-set identifier (SSID).
 *  - LFST (Last Fetched Store Table, 128): indexed by SSID. Each entry
 *    holds, per the paper:
 *      * a *valid bit* + last-fetched-store tag — the store-set view,
 *        set at store fetch and cleared at store issue; a predicted-
 *        dependent load waits to issue until the bit clears;
 *      * a *multi-bit counter* (3 bits) — the pair-predictor view,
 *        incremented at store fetch and decremented at store commit
 *        (and rolled back on store squash); a load with a non-zero
 *        counter is predicted to match an in-flight store and must
 *        search the store queue.
 *
 * Training: violations train both views (classic store-set merge);
 * observed forwarding matches additionally train the pair view —
 * the pair predictor tracks *all* matching store-load pairs, not only
 * violating ones (Figure 2 of the paper).
 *
 * The *aggressive* oracle of Figures 6/7 — "an alias-free version of
 * our store-load pair predictor" — is this same class with
 * exact (unaliased, unbounded) tables, selected by a flag.
 */

#ifndef LSQSCALE_PREDICTOR_STORE_SET_HH
#define LSQSCALE_PREDICTOR_STORE_SET_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"
#include "sample/serialize.hh"

namespace lsqscale {

/** SSID value meaning "no store set". */
inline constexpr std::uint16_t kNoSsid = 0xffff;

/** Store-set predictor configuration. */
struct StoreSetParams
{
    unsigned ssitEntries = 4096;
    unsigned lfstEntries = 128;
    unsigned counterBits = 3;
    /**
     * Cyclic clearing (Chrysos/Emer): flush the tables every this many
     * predictor accesses so stale store sets age out. Re-learning after
     * each flush is what makes the alias-free "aggressive" oracle pay
     * extra squashes (no constructive interference). 0 disables.
     */
    std::uint64_t clearInterval = 131072;
    /**
     * Alias-free mode: SSIT becomes an exact map keyed by full PC and
     * every PC gets a private SSID (unbounded LFST). Models the
     * paper's "aggressive predictor".
     */
    bool aliasFree = false;
};

/** Fetch-time prediction handed to a load. */
struct LoadPrediction
{
    std::uint16_t ssid = kNoSsid;
    /**
     * Store-set view: sequence number of the last fetched store of the
     * set that has not yet issued (the load should wait for it), or
     * kNoSeq.
     */
    SeqNum waitForStore = kNoSeq;
    /**
     * Pair-predictor view: true if the LFST counter is non-zero, i.e.
     * some store of the set is in flight and the load must search the
     * store queue.
     */
    bool mustSearchStoreQueue = false;

    bool hasSet() const { return ssid != kNoSsid; }
};

/** Fetch-time tag handed to a store (kept in its ROB entry). */
struct StorePrediction
{
    std::uint16_t ssid = kNoSsid;
    /**
     * Store-store serialization (Chrysos/Emer): the previous store of
     * the set, which this store must wait for before issuing, or
     * kNoSeq. This is what makes "wait for the set's last fetched
     * store" a sound rule for loads.
     */
    SeqNum waitForStore = kNoSeq;

    bool hasSet() const { return ssid != kNoSsid; }
};

/** The combined store-set / store-load pair predictor. */
class StoreSetPredictor
{
  public:
    explicit StoreSetPredictor(
        const StoreSetParams &params = StoreSetParams());

    // ------------------------------------------------ pipeline hooks --
    /** A load is fetched: read SSIT and LFST. */
    LoadPrediction loadFetch(Pc loadPc);

    /**
     * A store is fetched: set the valid bit / last-store tag and bump
     * the in-flight counter of its set (if it has one).
     */
    StorePrediction storeFetch(Pc storePc, SeqNum storeSeq);

    /**
     * The store issues: clear the valid bit if this store is still the
     * set's last-fetched store (store-set view only).
     */
    void storeIssued(const StorePrediction &tag, SeqNum storeSeq);

    /** The store commits: decrement the in-flight counter. */
    void storeCommitted(const StorePrediction &tag);

    /**
     * The store is squashed: roll the counter back, and drop the valid
     * bit if this store was the set's last-fetched store.
     */
    void storeSquashed(const StorePrediction &tag, SeqNum storeSeq);

    /**
     * Re-evaluate the store-set wait condition at load issue time: the
     * set's valid bit may have cleared since fetch.
     */
    bool storeStillPending(std::uint16_t ssid, SeqNum waitForStore) const;

    /** Pair-predictor view at issue time: is the counter non-zero? */
    bool counterNonZero(std::uint16_t ssid) const;

    // ---------------------------------------------------- training ----
    /**
     * A matching (store PC, load PC) pair was observed — either a
     * store-load order violation or a successful forwarding match.
     * Applies the Chrysos/Emer merge rule.
     */
    void trainPair(Pc storePc, Pc loadPc);

    /** Flush SSIT and LFST (cyclic clearing). */
    void clearTables();

    // ------------------------------------------------------- stats ----
    std::uint64_t pairsTrained() const { return pairsTrained_; }
    std::uint64_t tableClears() const { return tableClears_; }

    // -------------------------------------------- fault injection ----
    /**
     * Deterministically scramble the prediction tables (SSID
     * reassignments and counter perturbations derived from @p seed).
     * The predictor is a pure performance structure, so this is a
     * SILENT fault by design: timing/search counts shift, but no
     * invariant breaks and no checker fires — the taxonomy's example
     * of corruption that containment tooling cannot see
     * (docs/ROBUSTNESS.md).
     */
    void injectStateCorruption(std::uint64_t seed);

    // ----------------------------------------------- checkpointing ----
    /** Serialize all tables (checkpointing, docs/SAMPLING.md). */
    void saveState(SerialWriter &w) const;
    /** Restore state written by saveState (geometry must match). */
    void loadState(SerialReader &r);

  private:
    struct LfstEntry
    {
        bool valid = false;        ///< store-set view
        SeqNum lastStore = kNoSeq; ///< tag for the valid bit
        SatCounter counter;        ///< pair-predictor view

        LfstEntry() : counter(3, 0) {}
        explicit LfstEntry(unsigned bits) : counter(bits, 0) {}
    };

    unsigned ssitIndex(Pc pc) const;
    std::uint16_t ssitLookup(Pc pc) const;
    void ssitAssign(Pc pc, std::uint16_t ssid);
    LfstEntry *lfst(std::uint16_t ssid);
    const LfstEntry *lfst(std::uint16_t ssid) const;
    std::uint16_t allocateSsid(Pc pc);

    // lsqlint: no-serialize(construction config; loadState validates geometry against it)
    StoreSetParams params_;

    // Bounded (realistic) tables.
    std::vector<std::uint16_t> ssit_;
    std::vector<LfstEntry> lfstTable_;

    // Exact (alias-free) tables for the aggressive oracle.
    std::unordered_map<Pc, std::uint16_t> exactSsit_;
    std::unordered_map<std::uint16_t, LfstEntry> exactLfst_;
    std::uint16_t nextExactSsid_ = 0;

    void countAccess();
    std::uint64_t accesses_ = 0;
    std::uint64_t pairsTrained_ = 0;
    std::uint64_t tableClears_ = 0;
};

} // namespace lsqscale

#endif // LSQSCALE_PREDICTOR_STORE_SET_HH
