// A member missing from loadState, grandfathered with a trailing
// allow at the member's declaration (where the finding anchors).

#ifndef LINTFIX_SUP_SER_HH
#define LINTFIX_SUP_SER_HH

#include <cstdint>

namespace lsqscale {

class SerialWriter;
class SerialReader;

class SupSer
{
  public:
    void saveState(SerialWriter &w) const
    {
        w.u64(epoch_);
        w.u64(drift_);
    }

    void loadState(SerialReader &r)
    {
        epoch_ = r.u64();
    }

  private:
    std::uint64_t epoch_ = 0;
    std::uint64_t drift_ = 0; // lsqlint: allow(ser-member-coverage) -- fixture: staged in across PRs
};

} // namespace lsqscale

#endif // LINTFIX_SUP_SER_HH
