// Real violations, each silenced by a suppression form the analyzer
// must honor: trailing allow, allow above the line, multi-rule allow
// lists, and stats-buckets site removal. run_fixtures.py also mangles
// these markers in a temp copy to prove the findings come back.

#include <cstdint>

namespace lsqscale {

struct StatSetStub
{
    StatSetStub &histogram(const char *name, unsigned buckets);
    void observe(std::uint64_t v);
};

int *
makeArena()
{
    return new int[2]; // lsqlint: allow(raw-new) -- fixture: trailing form
}

enum class Mode
{
    Fast,
    Slow,
};

int
pick(Mode m)
{
    // lsqlint: allow(partial-switch) -- fixture: line-above form
    switch (m) {
    case Mode::Fast:
        return 1;
    }
    return 0;
}

void
report(StatSetStub &stats)
{
    stats.histogram("lintfix.occ", 4).observe(1); // lsqlint: allow(stats-buckets) -- fixture: site drops from comparison
}

void
reportAgain(StatSetStub &stats)
{
    stats.histogram("lintfix.occ", 8).observe(2);
}

// lsqlint: hot
void
warm(int **slot)
{
    *slot = new int[4]; // lsqlint: allow(hot-alloc,raw-new) -- fixture: multi-rule list
}

} // namespace lsqscale
