// Layer-3 header included (with justification) from layer-1 code.

#ifndef LINTFIX_SUP_PANEL_HH
#define LINTFIX_SUP_PANEL_HH

namespace lsqscale {

struct SupPanel
{
    int rows = 0;
};

} // namespace lsqscale

#endif // LINTFIX_SUP_PANEL_HH
