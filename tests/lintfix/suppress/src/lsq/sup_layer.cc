// An upward include carrying an explicit justification.

// lsqlint: allow(layer-upward-include) -- fixture: justified exception
#include "obs/sup_panel.hh"

namespace lsqscale {

int
supPanelRows(const SupPanel &p)
{
    return p.rows;
}

} // namespace lsqscale
