// Out-of-line definitions: exercises the rule's cross-file method
// lookup (class in the header, bodies in the matching .cc).

#include "predictor/store_set_mutant.hh"

namespace lsqscale {

void
StoreSetMutant::saveState(SerialWriter &w) const
{
    w.u64(ssit_.size());
    for (std::uint16_t ssid : ssit_)
        w.u16(ssid);
    w.u64(lfst_.size());
    for (std::uint64_t e : lfst_)
        w.u64(e);
    w.u64(accesses_);
    w.u64(pairsTrained_);
}

void
StoreSetMutant::loadState(SerialReader &r)
{
    std::uint64_t ssitSize = r.u64();
    for (std::uint16_t &ssid : ssit_)
        ssid = r.u16();
    (void)ssitSize;
    for (std::uint64_t &e : lfst_)
        e = r.u64();
    accesses_ = r.u64();
    // MUTANT: pairsTrained_ = r.u64() was deleted here.
}

} // namespace lsqscale
