// Mutant fixture: a StoreSetPredictor-shaped class whose loadState
// dropped one member (pairsTrained_) and whose histLen_ never made it
// into either body. Models the exact single-member-deletion mutants
// the ser-member-coverage rule exists to catch.

#ifndef LINTFIX_STORE_SET_MUTANT_HH
#define LINTFIX_STORE_SET_MUTANT_HH

#include <cstdint>
#include <vector>

namespace lsqscale {

class SerialWriter;
class SerialReader;

struct StoreSetMutantParams
{
    unsigned ssitEntries = 1024;
};

class StoreSetMutant
{
  public:
    void saveState(SerialWriter &w) const;
    void loadState(SerialReader &r);

  private:
    // lsqlint: no-serialize(construction config; loadState validates geometry against it)
    StoreSetMutantParams params_;

    std::vector<std::uint16_t> ssit_;
    std::vector<std::uint64_t> lfst_;
    std::uint64_t accesses_ = 0;
    std::uint64_t pairsTrained_ = 0; // saved but never restored
    unsigned histLen_ = 12;          // in neither body
};

} // namespace lsqscale

#endif // LINTFIX_STORE_SET_MUTANT_HH
