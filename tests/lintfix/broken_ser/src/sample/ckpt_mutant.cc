// Checkpoint-section mutants: kSecLsq is appended by the save path
// but never opened by the load path (the exact asymmetry that corrupts
// resumed runs), and kSecDup reuses the CORE tag.

#include <cstdint>

namespace lsqscale {
namespace {

constexpr std::uint32_t
fourcc(const char *s)
{
    return static_cast<std::uint32_t>(s[0]) << 24 |
           static_cast<std::uint32_t>(s[1]) << 16 |
           static_cast<std::uint32_t>(s[2]) << 8 |
           static_cast<std::uint32_t>(s[3]);
}

constexpr std::uint32_t kSecCore = fourcc("CORE");
constexpr std::uint32_t kSecLsq = fourcc("LSQ ");
constexpr std::uint32_t kSecDup = fourcc("CORE");

void
appendSection(std::uint32_t tag)
{
    (void)tag;
}

} // namespace

void
saveCheckpointMutant()
{
    appendSection(kSecCore);
    appendSection(kSecLsq);
    appendSection(kSecDup);
}

void
loadCheckpointMutant()
{
    appendSection(kSecCore);
    appendSection(kSecDup);
    // MUTANT: openSection(kSecLsq) was deleted here.
}

} // namespace lsqscale
