#!/usr/bin/env python3
"""Self-test for the lsqlint analyzer (the `lint_fixtures` ctest).

Runs the analyzer over each fixture mini-repo in this directory and
asserts the EXACT per-rule finding counts — a fixture firing an extra
rule is as much a failure as one not firing at all. Then:

  * mutant-catch: the broken_ser run must name the deleted member
    (`pairsTrained_`) — the acceptance criterion that a single-member
    deletion in a predictor-style class is caught;
  * suppression negative control: mangle the `allow(...)` markers in
    a temp copy of suppress/ and assert every silenced finding comes
    back;
  * cache behavior: cold run parses everything, warm run hits the
    cache for every file, an edit re-parses exactly the edited file
    and changes the findings (run with --jobs 2 to cover the
    parallel path).

Exits non-zero with a diff-style message on the first failure.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))

EXPECT = {
    "broken_ser": {
        "ser-member-coverage": 2,
        "ser-ckpt-sections": 2,
    },
    "broken_hot": {
        "hot-alloc": 2,   # direct in tick() + one level down in refill()
        "hot-string": 1,
        "hot-mutex": 1,
        "hot-virtual": 1,
        "hot-io": 1,
        "raw-new": 2,     # the allocations also trip the legacy rule
        "stat-dump": 1,   # ...and the printf trips stat-dump in src/core/
    },
    "broken_layer": {
        "layer-upward-include": 1,
        "layer-cycle": 1,
        "layer-bad-rehome": 2,  # invalid claim + unknown subsystem name
    },
    "broken_tax": {
        "tax-trace-hook": 1,
        "tax-trace-analyzer": 1,
        "tax-check-emit": 1,
        "tax-check-test": 1,
    },
    "broken_probe": {
        # An analyzer-mapped probe event with no hook site, plus a
        # probe-squash error kind the oracle never emits and no test
        # mentions: the unhooked-probe shape lsqlint must flag.
        "tax-trace-hook": 1,
        "tax-check-emit": 1,
        "tax-check-test": 1,
    },
    "broken_legacy": {
        "raw-new": 1,
        "bare-assert": 1,
        "narrowing-cast": 1,
        "partial-switch": 2,  # missing enumerator + spurious default:
        "raw-thread": 1,
        "stat-dump": 1,
        "stats-buckets": 2,   # one finding per inconsistent site
        "unchecked-syscall": 2,  # discarded fork() + bare fsync()
    },
    "broken_metric": {
        "metric-name": 4,       # bad taxonomy, counter w/o _total,
                                # gauge w/ _total, kind conflict
        "hot-phase-timer": 1,   # the phase(run)-annotated read is the
                                # in-fixture negative control
    },
    "clean": {},
    "suppress": {},
}

# What suppress/ reports once its allow(...) markers are mangled.
SUPPRESS_UNMASKED = {
    "raw-new": 2,
    "partial-switch": 1,
    "stats-buckets": 2,
    "hot-alloc": 1,
    "layer-upward-include": 1,
    "ser-member-coverage": 1,
}

failures = []


def fail(msg):
    failures.append(msg)
    print("FAIL: " + msg)


def run_lint(root, extra=()):
    cmd = [sys.executable, "-m", "tools.lsqlint", "--root", root,
           "--json", *extra]
    proc = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True)
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"lsqlint produced non-JSON output for {root}")
    return doc, proc.returncode


def counts_of(doc):
    out = {}
    for f in doc["findings"]:
        out[f["rule"]] = out.get(f["rule"], 0) + 1
    return out


def check_counts(name, doc, rc, expect):
    got = counts_of(doc)
    if got != expect:
        fail(f"{name}: rule counts {got} != expected {expect}")
    total = sum(expect.values())
    if rc != min(total, 125):
        fail(f"{name}: exit code {rc}, expected {min(total, 125)}")
    if doc["schema"] != "lsqlint-v2":
        fail(f"{name}: bad schema {doc['schema']!r}")
    known = set(doc["rules_known"])
    for f in doc["findings"]:
        if f["rule"] not in known:
            fail(f"{name}: finding with unknown rule {f['rule']}")
        if f["line"] < 1 or not f["path"]:
            fail(f"{name}: bad anchor {f['path']}:{f['line']}")


def main():
    # ---------------------------------------- fixture rule counts ----
    for name, expect in sorted(EXPECT.items()):
        doc, rc = run_lint(os.path.join(HERE, name), ("--no-cache",))
        check_counts(name, doc, rc, expect)
        print(f"ok: {name} ({sum(expect.values())} findings)")

    # ------------------------------------------ mutant-catch check ---
    doc, _rc = run_lint(os.path.join(HERE, "broken_ser"), ("--no-cache",))
    hits = [f for f in doc["findings"]
            if f["rule"] == "ser-member-coverage" and
            "pairsTrained_" in f["message"] and
            "loadState" in f["message"]]
    if not hits:
        fail("broken_ser: deleted member pairsTrained_ not reported "
             "against loadState")
    else:
        print("ok: mutant catch (pairsTrained_ flagged)")

    with tempfile.TemporaryDirectory(prefix="lintfix-") as tmp:
        # ------------------------------ suppression negative control -
        sup = os.path.join(tmp, "suppress")
        shutil.copytree(os.path.join(HERE, "suppress"), sup)
        for dirpath, _dirs, files in os.walk(sup):
            for fn in files:
                p = os.path.join(dirpath, fn)
                with open(p, encoding="utf-8") as fh:
                    text = fh.read()
                text = text.replace("lsqlint: allow(", "lsqlint: zz(")
                with open(p, "w", encoding="utf-8") as fh:
                    fh.write(text)
        doc, rc = run_lint(sup, ("--no-cache",))
        check_counts("suppress-unmasked", doc, rc, SUPPRESS_UNMASKED)
        print("ok: suppression negative control "
              f"({sum(SUPPRESS_UNMASKED.values())} findings return)")

        # ----------------------------------------- cache behavior ----
        leg = os.path.join(tmp, "broken_legacy")
        shutil.copytree(os.path.join(HERE, "broken_legacy"), leg)

        doc, _rc = run_lint(leg, ("--jobs", "2"))
        nfiles = doc["stats"]["files"]
        if doc["stats"]["cached"] != 0 or doc["stats"]["reparsed"] != nfiles:
            fail(f"cache: cold run expected 0 cached, got {doc['stats']}")
        cold_counts = counts_of(doc)

        doc, _rc = run_lint(leg, ("--jobs", "2"))
        if doc["stats"]["cached"] != nfiles:
            fail(f"cache: warm run expected {nfiles} cached, "
                 f"got {doc['stats']}")
        if counts_of(doc) != cold_counts:
            fail("cache: warm-run findings differ from cold run")

        edited = os.path.join(leg, "src", "core", "legacy_mutant.cc")
        with open(edited, "a", encoding="utf-8") as fh:
            fh.write("\nnamespace lsqscale {\n"
                     "int *\nextraLeak()\n{\n"
                     "    return new int[1];\n}\n"
                     "} // namespace lsqscale\n")
        doc, _rc = run_lint(leg, ("--jobs", "2"))
        if doc["stats"]["reparsed"] != 1 or \
                doc["stats"]["cached"] != nfiles - 1:
            fail(f"cache: post-edit run expected exactly 1 reparse, "
                 f"got {doc['stats']}")
        want = dict(cold_counts)
        want["raw-new"] = want.get("raw-new", 0) + 1
        if counts_of(doc) != want:
            fail(f"cache: post-edit counts {counts_of(doc)} != {want}")
        if not failures:
            print("ok: cache (cold parse, warm hit, single re-parse "
                  "after edit)")

        # ------------------------------------------- --json-out ------
        out_path = os.path.join(tmp, "report.json")
        cmd = [sys.executable, "-m", "tools.lsqlint", "--root",
               os.path.join(HERE, "clean"), "--no-cache",
               "--json-out", out_path]
        subprocess.run(cmd, cwd=REPO, capture_output=True, text=True,
                       check=False)
        try:
            with open(out_path, encoding="utf-8") as fh:
                side = json.load(fh)
            if side["findings"]:
                fail("--json-out: clean fixture reported findings")
            else:
                print("ok: --json-out")
        except (OSError, json.JSONDecodeError) as e:
            fail(f"--json-out: unreadable report ({e})")

    if failures:
        print(f"\n{len(failures)} fixture check(s) FAILED")
        return 1
    print("\nall lintfix checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
