// Hot-path purity mutants: one of everything the hot-* family bans,
// plus an allocation one call level below the annotated seed to prove
// the "called from hot" attribution works.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

namespace lsqscale {

struct Stepper
{
    virtual void step() = 0;
};

int *
refill()
{
    return new int[8]; // hot-alloc attributed via the caller, raw-new
}

// lsqlint: hot
void
tick(Stepper *s)
{
    int *scratch = new int[4];
    std::string label("tick");
    std::mutex mu;
    s->step();
    std::printf("%s\n", label.c_str());
    (void)mu;
    delete[] scratch;
    refill();
}

} // namespace lsqscale
