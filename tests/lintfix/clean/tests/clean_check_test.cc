// Test mention for every CheckErrorKind value.

#include "check/clean_kinds.hh"

int
main()
{
    using lsqscale::CheckErrorKind;
    return classifyClean() == CheckErrorKind::OrderMismatch ? 0 : 1;
}
