// Decoys the old regex linter flagged and the token-stream analyzer
// must not: rule trigger patterns living in comments, string
// literals, and preprocessor bodies are not code.
//
//   new Foo; assert(cycle); std::thread t; std::cout << x;
//   static_cast<int>(now_); fork();

#define LINTFIX_MAKE(T) (new T())

namespace lsqscale {

const char *const kDoc =
    "new Foo; assert(cycle); std::thread t; "
    "std::cout << static_cast<int>(now_); fork();";

const char *
docString()
{
    return kDoc;
}

} // namespace lsqscale
