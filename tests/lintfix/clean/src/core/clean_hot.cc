// A pure hot function: arithmetic, a cold trace hook (whose argument
// list may allocate — it is compiled out in release), and a call into
// an equally pure helper.

#include "common/clean_base.hh"

#include <string>

namespace lsqscale {

Cycle
advance(Cycle now)
{
    return now + 1;
}

// lsqlint: hot
Cycle
cleanTick(Cycle now, std::uint64_t seq)
{
    LSQ_TRACE_HOOK(tracer_, std::to_string(seq), seq);
    return advance(now);
}

} // namespace lsqscale
