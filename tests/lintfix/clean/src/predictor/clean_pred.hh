// Fully-covered serialization: every member is either in both bodies,
// documented by a cold LSQ_ASSERT (the quiescence idiom), or carries
// a no-serialize annotation.

#ifndef LINTFIX_CLEAN_PRED_HH
#define LINTFIX_CLEAN_PRED_HH

#include <cstdint>
#include <vector>

#include "common/clean_base.hh"

namespace lsqscale {

class SerialWriter;
class SerialReader;

class CleanPredictor
{
  public:
    void saveState(SerialWriter &w) const
    {
        w.u64(history_);
        LSQ_ASSERT(scratch_.empty(), "quiescent at save");
    }

    void loadState(SerialReader &r)
    {
        history_ = r.u64();
        LSQ_ASSERT(scratch_.empty(), "quiescent at load");
    }

  private:
    std::uint64_t history_ = 0;
    std::vector<int> scratch_; // covered by the cold asserts above
    // lsqlint: no-serialize(derived from table geometry at construction)
    std::uint64_t mask_ = 0;
};

} // namespace lsqscale

#endif // LINTFIX_CLEAN_PRED_HH
