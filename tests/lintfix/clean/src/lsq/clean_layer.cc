// Downward include only: lsq (layer 1) reading common (layer 0).

#include "common/clean_base.hh"

namespace lsqscale {

Cycle
nextCycle(Cycle now)
{
    return now + 1;
}

} // namespace lsqscale
