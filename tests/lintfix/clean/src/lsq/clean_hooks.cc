// Hook site for every TraceEvent value.

#include "common/clean_base.hh"
#include "obs/clean_trace.hh"

namespace lsqscale {

void
emitRetire(std::uint64_t seq)
{
    LSQ_TRACE_HOOK(tracer_, TraceEvent::Retire, seq);
}

} // namespace lsqscale
