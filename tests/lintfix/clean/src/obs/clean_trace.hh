// A fully-wired TraceEvent: every value has a hook site and an
// analyzer mapping, so the taxonomy rules stay silent.

// lsqlint: layer(common) -- hook-site interface, included from layer-1 code

#ifndef LINTFIX_CLEAN_TRACE_HH
#define LINTFIX_CLEAN_TRACE_HH

#include <cstdint>

namespace lsqscale {

enum class TraceEvent : std::uint8_t
{
    Retire,
};

} // namespace lsqscale

#endif // LINTFIX_CLEAN_TRACE_HH
