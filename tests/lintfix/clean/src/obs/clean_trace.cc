// Analyzer mapping for every TraceEvent value.

#include "obs/clean_trace.hh"

namespace lsqscale {
namespace {

struct NameRow
{
    TraceEvent ev;
    const char *name;
};

const NameRow kNames[] = {
    {TraceEvent::Retire, "retire"},
};

} // namespace
} // namespace lsqscale
