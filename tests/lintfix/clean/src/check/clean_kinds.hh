// A fully-wired CheckErrorKind: emitted by the oracle and mentioned
// by a test.

#ifndef LINTFIX_CLEAN_KINDS_HH
#define LINTFIX_CLEAN_KINDS_HH

namespace lsqscale {

enum class CheckErrorKind
{
    OrderMismatch,
};

} // namespace lsqscale

#endif // LINTFIX_CLEAN_KINDS_HH
