// Oracle emit site for every CheckErrorKind value.

#include "check/clean_kinds.hh"

namespace lsqscale {

CheckErrorKind
classifyClean()
{
    return CheckErrorKind::OrderMismatch;
}

} // namespace lsqscale
