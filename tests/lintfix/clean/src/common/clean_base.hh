// Layer-0 header for the clean fixture's downward include.

#ifndef LINTFIX_CLEAN_BASE_HH
#define LINTFIX_CLEAN_BASE_HH

#include <cstdint>

namespace lsqscale {

using Cycle = std::uint64_t;

#define LSQ_ASSERT(cond, msg) ((void)(cond))
#define LSQ_TRACE_HOOK(tracer, ev, seq) ((void)(ev), (void)(seq))

} // namespace lsqscale

#endif // LINTFIX_CLEAN_BASE_HH
