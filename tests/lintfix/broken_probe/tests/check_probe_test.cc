// Test mention for MissedForward only; MissedProbeSquash is untested.

#include "check/kinds_probe.hh"

int
main()
{
    using lsqscale::CheckErrorKind;
    return classify() == CheckErrorKind::MissedForward ? 0 : 1;
}
