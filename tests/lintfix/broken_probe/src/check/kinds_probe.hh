// Probe-check mutant: CheckErrorKind::MissedProbeSquash exists in the
// taxonomy but the oracle never emits it and no test mentions it — a
// probe-squash check nobody has ever seen fire.

#ifndef LINTFIX_KINDS_PROBE_HH
#define LINTFIX_KINDS_PROBE_HH

namespace lsqscale {

enum class CheckErrorKind
{
    MissedForward,
    MissedProbeSquash,
};

} // namespace lsqscale

#endif // LINTFIX_KINDS_PROBE_HH
