// Oracle emit site: reports MissedForward only.

#include "check/kinds_probe.hh"

namespace lsqscale {

CheckErrorKind
classify()
{
    return CheckErrorKind::MissedForward;
}

} // namespace lsqscale
