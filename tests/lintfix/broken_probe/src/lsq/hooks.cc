// The one hook site in this fixture: emits Fetch, never LbProbe — the
// snoop path lost its trace emit in a refactor.

#include "obs/trace_probe.hh"

#define LSQ_TRACE_HOOK(tracer, ev, seq) ((void)(ev), (void)(seq))

namespace lsqscale {

void
emitFetch(std::uint64_t seq)
{
    LSQ_TRACE_HOOK(tracer_, TraceEvent::Fetch, seq);
}

} // namespace lsqscale
