// Probe-event mutant: TraceEvent::LbProbe is mapped by the analyzer
// name table but no hook site emits it — the shape of an
// "instrumented the enum, forgot the emit" coherence-probe refactor.

// lsqlint: layer(common) -- hook-site interface, included from layer-1 code

#ifndef LINTFIX_TRACE_PROBE_HH
#define LINTFIX_TRACE_PROBE_HH

#include <cstdint>

namespace lsqscale {

enum class TraceEvent : std::uint8_t
{
    Fetch,
    LbProbe,
};

} // namespace lsqscale

#endif // LINTFIX_TRACE_PROBE_HH
