// Name table: maps BOTH events, so tax-trace-analyzer stays quiet —
// the bug this fixture plants is the missing hook site only.

#include "obs/trace_probe.hh"

namespace lsqscale {
namespace {

struct NameRow
{
    TraceEvent ev;
    const char *name;
};

const NameRow kNames[] = {
    {TraceEvent::Fetch, "fetch"},
    {TraceEvent::LbProbe, "lb-probe"},
};

} // namespace
} // namespace lsqscale
