// Crash-isolation code that discards a syscall result. src/harness/
// is exactly where unchecked-syscall applies (and where raw-thread
// and stat-dump do not).

#include <unistd.h>

namespace lsqscale {

void
spawnChild()
{
    fork();
}

void
flushSpool()
{
    fsync(3);
}

} // namespace lsqscale
