// One of every ported PR 1/2/3/5 rule, as real token patterns (not
// comment/string decoys — those live in the clean fixture and must
// stay silent).

#include <cassert>
#include <cstdint>
#include <iostream>
#include <thread>

namespace lsqscale {

enum class Color
{
    Red,
    Green,
    Blue,
};

int *
makeBuf()
{
    assert(sizeof(int) == 4);
    return new int[4];
}

unsigned
narrow(std::uint64_t cycle)
{
    return static_cast<unsigned>(cycle + 1);
}

const char *
colorName(Color c)
{
    switch (c) {
    case Color::Red:
        return "red";
    case Color::Green:
        return "green";
    }
    return "?";
}

int
colorRank(Color c)
{
    switch (c) {
    case Color::Red:
    case Color::Green:
    case Color::Blue:
        return 1;
    default:
        return 0;
    }
}

struct StatSetStub
{
    StatSetStub &histogram(const char *name, unsigned buckets);
    void observe(std::uint64_t v);
};

void
spawnAndReport(StatSetStub &stats)
{
    std::thread worker(makeBuf);
    std::cout << "done\n";
    stats.histogram("lintfix.lat", 8).observe(1);
    worker.join();
}

void
reportAgain(StatSetStub &stats)
{
    stats.histogram("lintfix.lat", 16).observe(2);
}

} // namespace lsqscale
