// Test mention for MissedViolation only; GhostKind is untested.

#include "check/kinds_mutant.hh"

int
main()
{
    using lsqscale::CheckErrorKind;
    return classify() == CheckErrorKind::MissedViolation ? 0 : 1;
}
