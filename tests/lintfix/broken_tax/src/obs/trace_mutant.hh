// Taxonomy mutant: TraceEvent::Orphan has neither a hook site nor an
// analyzer mapping — a value someone added (or orphaned in a
// refactor) without wiring the observability contract.

// lsqlint: layer(common) -- hook-site interface, included from layer-1 code

#ifndef LINTFIX_TRACE_MUTANT_HH
#define LINTFIX_TRACE_MUTANT_HH

#include <cstdint>

namespace lsqscale {

enum class TraceEvent : std::uint8_t
{
    Fetch,
    Orphan,
};

} // namespace lsqscale

#endif // LINTFIX_TRACE_MUTANT_HH
