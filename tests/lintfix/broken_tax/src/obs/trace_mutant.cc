// Name table: maps Fetch only. A namespace-scope initializer table,
// exactly like the real obs/trace.cc — must be visible to the rule
// even though it is outside any function body.

#include "obs/trace_mutant.hh"

namespace lsqscale {
namespace {

struct NameRow
{
    TraceEvent ev;
    const char *name;
};

const NameRow kNames[] = {
    {TraceEvent::Fetch, "fetch"},
};

} // namespace
} // namespace lsqscale
