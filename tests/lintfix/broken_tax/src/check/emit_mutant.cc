// Oracle emit site: reports MissedViolation only.

#include "check/kinds_mutant.hh"

namespace lsqscale {

CheckErrorKind
classify()
{
    return CheckErrorKind::MissedViolation;
}

} // namespace lsqscale
