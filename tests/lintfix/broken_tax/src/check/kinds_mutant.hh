// Taxonomy mutant: CheckErrorKind::GhostKind is never emitted by the
// oracle and never mentioned by a test — a checker path nobody has
// ever seen fire.

#ifndef LINTFIX_KINDS_MUTANT_HH
#define LINTFIX_KINDS_MUTANT_HH

namespace lsqscale {

enum class CheckErrorKind
{
    MissedViolation,
    GhostKind,
};

} // namespace lsqscale

#endif // LINTFIX_KINDS_MUTANT_HH
