// lsq is layer 1; obs is layer 3. This include points up the DAG.

#include "obs/panel.hh"

namespace lsqscale {

int
panelRows(const Panel &p)
{
    return p.rows;
}

} // namespace lsqscale
