// Layer-3 observability header: including this from layer-1 code is
// the violation broken_layer exists to demonstrate.

#ifndef LINTFIX_PANEL_HH
#define LINTFIX_PANEL_HH

namespace lsqscale {

struct Panel
{
    int rows = 0;
};

} // namespace lsqscale

#endif // LINTFIX_PANEL_HH
