// A rehome claim that lies: the file claims to be a layer-0 common
// header while including layer-2 sim code. The claim is validated,
// not trusted, so this must fire layer-bad-rehome at the claim line.

// lsqlint: layer(common) -- fixture: invalid claim, includes sim/

#ifndef LINTFIX_CLAIMED_HH
#define LINTFIX_CLAIMED_HH

#include "sim/widget.hh"

namespace lsqscale {

struct Claimed
{
    Widget w;
};

} // namespace lsqscale

#endif // LINTFIX_CLAIMED_HH
