// A rehome claim naming a subsystem that does not exist.

// lsqlint: layer(gonzo) -- fixture: unknown subsystem name

namespace lsqscale {

int
unknownClaim()
{
    return 0;
}

} // namespace lsqscale
