// Other half of the include cycle rooted at cyc_a.hh.

#ifndef LINTFIX_CYC_B_HH
#define LINTFIX_CYC_B_HH

#include "core/cyc_a.hh"

namespace lsqscale {

struct CycB
{
    int b = 0;
};

} // namespace lsqscale

#endif // LINTFIX_CYC_B_HH
