// Half of a deliberate include cycle (see cyc_b.hh). Header guards
// hide this from the compiler; the layer-cycle rule must not be
// fooled.

#ifndef LINTFIX_CYC_A_HH
#define LINTFIX_CYC_A_HH

#include "core/cyc_b.hh"

namespace lsqscale {

struct CycA
{
    int a = 0;
};

} // namespace lsqscale

#endif // LINTFIX_CYC_A_HH
