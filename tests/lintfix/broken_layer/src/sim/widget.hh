// Layer-2 header pulled in by claimed.hh to invalidate its claim.

#ifndef LINTFIX_WIDGET_HH
#define LINTFIX_WIDGET_HH

namespace lsqscale {

struct Widget
{
    int w = 0;
};

} // namespace lsqscale

#endif // LINTFIX_WIDGET_HH
