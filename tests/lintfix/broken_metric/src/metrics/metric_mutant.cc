// Registry-metric and phase-timer mutants: one of every metric-name
// violation (bad taxonomy, counter without _total, gauge wearing
// _total, kind conflict across sites), plus an unannotated profiler
// clock read on the hot path. The second hostNowNs() carries a
// `lsqlint: phase(run)` annotation and must NOT fire — that is the
// fixture's negative control for the boundary exemption.

#include <cstdint>

namespace lsqscale {

std::uint64_t hostNowNs();

namespace metrics {
struct Counter { void add(std::uint64_t n = 1); };
struct Gauge { void set(std::int64_t v); };
struct Histogram { void observe(std::uint64_t v); };
Counter &counter(const char *name);
Gauge &gauge(const char *name);
Histogram &histogram(const char *name);
} // namespace metrics

void
record()
{
    // Missing lsq_ prefix.
    metrics::counter("serve_requests_total").add();
    // Counter must end _total.
    metrics::counter("lsq_serve_requests").add();
    // Gauge must not wear the counter suffix.
    metrics::gauge("lsq_serve_depth_total").set(3);
    // Same name, different kind: register-on-first-use loses one.
    metrics::histogram("lsq_serve_requests").observe(1);
}

void
work();

// lsqlint: hot
void
tick()
{
    std::uint64_t t0 = hostNowNs();
    work();
    std::uint64_t t1 = hostNowNs(); // lsqlint: phase(run)
    (void)t0;
    (void)t1;
}

} // namespace lsqscale
