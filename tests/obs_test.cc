/**
 * @file
 * Tests for the observability subsystem (src/obs/): the event-trace
 * ring and binary format, --trace-events parsing, Konata/O3PipeView
 * round trips, stall attribution, interval-stats sampling, and — the
 * load-bearing contract — that instrumented runs stay bit-identical
 * to plain ones, serially and under the parallel sweep.
 *
 * Everything here runs in every build flavor. Tests that need the
 * hook sites compiled in (event production end-to-end) are gated on
 * LSQSCALE_TRACE and become no-ops in default builds, where the same
 * binaries verify the zero-overhead contract instead: a Tracer can be
 * attached but records nothing.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "harness/sink.hh"
#include "harness/sweep.hh"
#include "obs/analyzer.hh"
#include "obs/interval.hh"
#include "obs/konata.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

std::string
tempPath(const std::string &name)
{
    std::string p = ::testing::TempDir() + "lsqscale_obs_" + name;
    std::remove(p.c_str());
    return p;
}

TraceRecord
rec(TraceEvent ev, Cycle cycle, SeqNum seq, std::uint64_t payload = 0,
    std::uint8_t a = 0, std::uint16_t b = 0)
{
    TraceRecord r;
    r.cycle = cycle;
    r.seq = seq;
    r.payload = payload;
    r.event = static_cast<std::uint8_t>(ev);
    r.a = a;
    r.b = b;
    return r;
}

/** Fast design point shared by the end-to-end tests. */
SimConfig
tinyConfig(const std::string &bench = "bzip")
{
    SimConfig cfg = configs::base(bench);
    cfg.instructions = 2000;
    cfg.warmup = 200;
    return cfg;
}

/** Balanced braces/brackets outside strings (harness_test idiom). */
bool
jsonBalanced(const std::string &doc)
{
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        char ch = doc[i];
        if (inString) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                inString = false;
            continue;
        }
        if (ch == '"')
            inString = true;
        else if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !inString;
}

// ----------------------------------------------------- TraceRing ------

TEST(TraceRing, FillsThenWrapsOverwritingOldest)
{
    TraceRing ring(4);
    EXPECT_TRUE(ring.empty());
    for (SeqNum s = 0; s < 10; ++s)
        ring.push(rec(TraceEvent::Fetch, s, s));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_EQ(ring.wrapped(), 6u);
    // Oldest-first: the survivors are seqs 6..9.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(ring.at(i).seq, 6u + i);
    auto drained = ring.drain();
    ASSERT_EQ(drained.size(), 4u);
    EXPECT_EQ(drained.front().seq, 6u);
    EXPECT_EQ(drained.back().seq, 9u);
}

TEST(TraceRing, ClearKeepsWrapCount)
{
    TraceRing ring(2);
    ring.push(rec(TraceEvent::Fetch, 0, 0));
    ring.push(rec(TraceEvent::Fetch, 1, 1));
    ring.push(rec(TraceEvent::Fetch, 2, 2));
    EXPECT_EQ(ring.wrapped(), 1u);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.wrapped(), 1u);
    ring.push(rec(TraceEvent::Issue, 3, 3));
    EXPECT_EQ(ring.at(0).seq, 3u);
}

// ----------------------------------------------- parseTraceEvents -----

TEST(TraceEvents, ParsesNamesAndCategories)
{
    std::uint32_t mask = 0;
    std::string err;
    ASSERT_TRUE(parseTraceEvents("fetch,retire", mask, err)) << err;
    EXPECT_EQ(mask, traceEventBit(TraceEvent::Fetch) |
                        traceEventBit(TraceEvent::Retire));

    ASSERT_TRUE(parseTraceEvents("pipe", mask, err));
    EXPECT_TRUE(mask & traceEventBit(TraceEvent::Dispatch));
    EXPECT_FALSE(mask & traceEventBit(TraceEvent::SqSearch));

    ASSERT_TRUE(parseTraceEvents("all", mask, err));
    EXPECT_EQ(mask, kTraceAllEvents);

    ASSERT_TRUE(parseTraceEvents("pred,squash.violation", mask, err));
    EXPECT_TRUE(mask & traceEventBit(TraceEvent::PredWaitCycle));
    EXPECT_TRUE(mask & traceEventBit(TraceEvent::ViolationSquash));
}

TEST(TraceEvents, RejectsUnknownTokenAndEmptyList)
{
    std::uint32_t mask = 0;
    std::string err;
    EXPECT_FALSE(parseTraceEvents("fetch,bogus", mask, err));
    EXPECT_NE(err.find("bogus"), std::string::npos);
    EXPECT_FALSE(parseTraceEvents("", mask, err));
    EXPECT_FALSE(parseTraceEvents(",,", mask, err));
}

TEST(TraceEvents, EveryEventHasAParsableName)
{
    for (unsigned i = 0; i < kNumTraceEvents; ++i) {
        TraceEvent ev = static_cast<TraceEvent>(i);
        std::uint32_t mask = 0;
        std::string err;
        ASSERT_TRUE(parseTraceEvents(traceEventName(ev), mask, err))
            << traceEventName(ev) << ": " << err;
        EXPECT_EQ(mask, traceEventBit(ev));
    }
}

// -------------------------------------------------------- Tracer ------

TEST(Tracer, MaskFiltersRecords)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.eventMask = traceEventBit(TraceEvent::Retire);
    Tracer t(cfg);
    t.record(TraceEvent::Fetch, 1, 10);
    t.record(TraceEvent::Retire, 5, 10);
    t.record(TraceEvent::Issue, 3, 10);
    EXPECT_EQ(t.recorded(), 1u);
    auto recs = t.collect();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].ev(), TraceEvent::Retire);
    EXPECT_EQ(recs[0].cycle, 5u);
}

TEST(Tracer, BinaryFileRoundTripAcrossRingDrains)
{
    std::string path = tempPath("roundtrip.evtrace");
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.ringCapacity = 8; // force many mid-run drains
    cfg.binaryPath = path;
    {
        Tracer t(cfg);
        for (SeqNum s = 0; s < 100; ++s)
            t.record(TraceEvent::Dispatch, 2 * s, s, 0x1000 + s, 1, 3);
        t.finish();
    }
    auto recs = readTraceFile(path);
    ASSERT_EQ(recs.size(), 100u);
    for (SeqNum s = 0; s < 100; ++s) {
        EXPECT_EQ(recs[s].seq, s);
        EXPECT_EQ(recs[s].cycle, 2 * s);
        EXPECT_EQ(recs[s].payload, 0x1000 + s);
        EXPECT_EQ(recs[s].ev(), TraceEvent::Dispatch);
        EXPECT_EQ(recs[s].b, 3u);
    }
    std::remove(path.c_str());
}

TEST(Tracer, CollectPrefersCompleteFileOverWrappedRing)
{
    std::string path = tempPath("collect.evtrace");
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.ringCapacity = 4;
    cfg.binaryPath = path;
    Tracer t(cfg);
    for (SeqNum s = 0; s < 20; ++s)
        t.record(TraceEvent::Issue, s, s);
    // The ring only holds 4 records, but the file has the full stream.
    auto recs = t.collect();
    EXPECT_EQ(recs.size(), 20u);
    std::remove(path.c_str());
}

TEST(Tracer, RecordToStringNamesTheEvent)
{
    std::string s =
        traceRecordToString(rec(TraceEvent::SqSearch, 7, 42, 0xbeef, 1, 4));
    EXPECT_NE(s.find("sq.search"), std::string::npos);
    EXPECT_NE(s.find("seq=42"), std::string::npos);
}

// -------------------------------------------------------- Konata ------

std::vector<TraceRecord>
twoInstLifecycleTrace()
{
    return {
        rec(TraceEvent::Fetch, 1, 100, 0x400000, 0 /* IntAlu */),
        rec(TraceEvent::Fetch, 1, 101, 0x400004, 6 /* Store */),
        rec(TraceEvent::Dispatch, 3, 100, 0x400000),
        rec(TraceEvent::Dispatch, 3, 101, 0x400004),
        rec(TraceEvent::Issue, 5, 100),
        rec(TraceEvent::Issue, 6, 101),
        rec(TraceEvent::Complete, 6, 100),
        rec(TraceEvent::Complete, 8, 101),
        rec(TraceEvent::Retire, 9, 100, 0, 0),
        rec(TraceEvent::Retire, 10, 101, 0, 1),
    };
}

TEST(Konata, ReconstructsRetiredLifecycles)
{
    auto insts = reconstructLifecycles(twoInstLifecycleTrace());
    ASSERT_EQ(insts.size(), 2u);
    EXPECT_EQ(insts[0].seq, 100u);
    EXPECT_EQ(insts[0].fetch, 1u);
    EXPECT_EQ(insts[0].dispatch, 3u);
    EXPECT_EQ(insts[0].issue, 5u);
    EXPECT_EQ(insts[0].complete, 6u);
    EXPECT_EQ(insts[0].retire, 9u);
    EXPECT_FALSE(insts[0].isStore);
    EXPECT_TRUE(insts[1].isStore);
    EXPECT_EQ(insts[1].pc, 0x400004u);
}

TEST(Konata, SquashedInstructionsAreOmitted)
{
    std::vector<TraceRecord> records = {
        rec(TraceEvent::Fetch, 1, 7, 0x1000, 0),
        rec(TraceEvent::Dispatch, 2, 7),
        rec(TraceEvent::Issue, 3, 7),
        // seq 7 squashed and re-fetched: the first incarnation dies.
        rec(TraceEvent::Fetch, 10, 7, 0x1000, 0),
        rec(TraceEvent::Dispatch, 11, 7),
        rec(TraceEvent::Retire, 15, 7),
        // seq 8 never retires (still in flight / squashed).
        rec(TraceEvent::Fetch, 1, 8, 0x1004, 0),
    };
    auto insts = reconstructLifecycles(records);
    ASSERT_EQ(insts.size(), 1u);
    EXPECT_EQ(insts[0].fetch, 10u);
    // The pre-squash issue at cycle 3 must not leak into the replay.
    EXPECT_EQ(insts[0].issue, kNoCycle);
}

TEST(Konata, O3PipeViewRoundTrip)
{
    auto insts = reconstructLifecycles(twoInstLifecycleTrace());
    std::string text = exportO3PipeView(insts);
    EXPECT_NE(text.find("O3PipeView:fetch:"), std::string::npos);
    EXPECT_NE(text.find("O3PipeView:retire:"), std::string::npos);

    std::vector<InstLifecycle> parsed;
    std::string err;
    ASSERT_TRUE(parseO3PipeView(text, parsed, err)) << err;
    ASSERT_EQ(parsed.size(), insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        EXPECT_EQ(parsed[i].seq, insts[i].seq);
        EXPECT_EQ(parsed[i].pc, insts[i].pc);
        EXPECT_EQ(parsed[i].fetch, insts[i].fetch);
        EXPECT_EQ(parsed[i].dispatch, insts[i].dispatch);
        EXPECT_EQ(parsed[i].issue, insts[i].issue);
        EXPECT_EQ(parsed[i].complete, insts[i].complete);
        EXPECT_EQ(parsed[i].retire, insts[i].retire);
        EXPECT_EQ(parsed[i].isStore, insts[i].isStore);
    }
}

TEST(Konata, ParserRejectsTruncatedInput)
{
    auto insts = reconstructLifecycles(twoInstLifecycleTrace());
    std::string text = exportO3PipeView(insts);
    // Cut the document mid-instruction.
    std::string truncated = text.substr(0, text.rfind("O3PipeView"));
    std::vector<InstLifecycle> parsed;
    std::string err;
    EXPECT_FALSE(parseO3PipeView(truncated, parsed, err));
    EXPECT_FALSE(err.empty());
}

// ------------------------------------------------------ Analyzer ------

TEST(Analyzer, AttributesEachStallClass)
{
    std::vector<TraceRecord> records = {
        // 4-segment SQ search: 3 pipelining penalty cycles.
        rec(TraceEvent::SqSearch, 10, 1, 0x100, 1, 4),
        // 1-segment search: no penalty.
        rec(TraceEvent::SqSearch, 11, 2, 0x108, 0, 1),
        // LQ + commit searches: (2-1) + (3-1) = 3 "other" cycles.
        rec(TraceEvent::LqSearch, 12, 3, 0, 0, 2),
        rec(TraceEvent::StoreCommitSearch, 13, 4, 0, 0, 3),
        // A squashed search charged a 3-cycle replay.
        rec(TraceEvent::SqSearchContention, 14, 5, 0, 0, 3),
        rec(TraceEvent::StoreCommitDelay, 15, 6),
        rec(TraceEvent::StoreCommitDelay, 16, 6),
        rec(TraceEvent::PredWaitCycle, 17, 7),
        rec(TraceEvent::PredFalseDep, 18, 7),
        rec(TraceEvent::SqSearchSkip, 19, 8),
        rec(TraceEvent::LbFullStall, 20, 9),
        rec(TraceEvent::ViolationSquash, 21, 5, 0, 1),
        rec(TraceEvent::ForwardHit, 22, 1, 42),
        rec(TraceEvent::Retire, 30, 1),
        rec(TraceEvent::Retire, 31, 2),
    };
    StallAttribution att = attributeStalls(records);
    EXPECT_EQ(att.sqSearches, 2u);
    EXPECT_EQ(att.sqSearchPipelineCycles, 3u);
    EXPECT_EQ(att.otherSearches, 2u);
    EXPECT_EQ(att.otherSearchPipelineCycles, 3u);
    EXPECT_EQ(att.searchSquashes, 1u);
    EXPECT_EQ(att.searchSquashCycles, 3u);
    EXPECT_EQ(att.storeCommitDelayCycles, 2u);
    EXPECT_EQ(att.predictorWaitCycles, 1u);
    EXPECT_EQ(att.predictorFalseDeps, 1u);
    EXPECT_EQ(att.searchesSkipped, 1u);
    EXPECT_EQ(att.loadBufferStalls, 1u);
    EXPECT_EQ(att.violationSquashes, 1u);
    EXPECT_EQ(att.forwardingHits, 1u);
    EXPECT_EQ(att.retired, 2u);
    EXPECT_EQ(att.firstCycle, 10u);
    EXPECT_EQ(att.lastCycle, 31u);
    EXPECT_EQ(att.elapsed(), 22u);
}

TEST(Analyzer, EmptyTraceHasZeroSpan)
{
    StallAttribution att = attributeStalls({});
    EXPECT_EQ(att.elapsed(), 0u);
    EXPECT_EQ(att.retired, 0u);
}

TEST(Analyzer, TableDistinguishesPipeliningFromSquashes)
{
    std::vector<TraceRecord> records = {
        rec(TraceEvent::SqSearch, 1, 1, 0, 0, 4),
        rec(TraceEvent::SqSearchContention, 2, 2, 0, 0, 3),
        rec(TraceEvent::Retire, 3, 1),
    };
    std::string table = renderStallTable(attributeStalls(records));
    EXPECT_NE(table.find("segment search pipelining"),
              std::string::npos);
    EXPECT_NE(table.find("search squash + replay"), std::string::npos);
    EXPECT_NE(table.find("load-buffer capacity"), std::string::npos);
    EXPECT_NE(table.find("retired ops: 1"), std::string::npos);
}

// ------------------------------------------------ IntervalSeries ------

TEST(IntervalSeries, JsonIsWellFormed)
{
    IntervalSeries s({"ipc", "rob"}, 100);
    s.append(100, {1.5, 32.0});
    s.append(200, {1.25, 40.5});
    std::string json = s.toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"schema\": \"lsqscale-intervals-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"interval_cycles\": 100"), std::string::npos);
    EXPECT_NE(json.find("\"ipc\""), std::string::npos);
    EXPECT_NE(json.find("[100, 1.5, 32]"), std::string::npos);
}

TEST(IntervalSeries, NonFiniteValuesBecomeNull)
{
    IntervalSeries s({"ratio"}, 10);
    s.append(10, {std::nan("")});
    std::string json = s.toJson();
    EXPECT_TRUE(jsonBalanced(json));
    EXPECT_NE(json.find("null"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

// ----------------------------------------- interval sampling e2e ------

TEST(IntervalSampling, SimulatorProducesSeries)
{
    SimConfig cfg = tinyConfig();
    cfg.intervalCycles = 100;
    SimResult r = Simulator(cfg).run();
    ASSERT_FALSE(r.intervals.empty());
    EXPECT_EQ(r.intervals.intervalCycles(), 100u);

    const auto &cols = r.intervals.columns();
    auto has = [&](const char *name) {
        return std::find(cols.begin(), cols.end(), name) != cols.end();
    };
    EXPECT_TRUE(has("ipc"));
    EXPECT_TRUE(has("rob"));
    EXPECT_TRUE(has("lb"));
    EXPECT_TRUE(has("sq_searches"));

    Cycle prev = 0;
    for (std::size_t i = 0; i < r.intervals.size(); ++i) {
        const auto &s = r.intervals.sample(i);
        EXPECT_GT(s.cycle, prev);
        prev = s.cycle;
        ASSERT_EQ(s.values.size(), cols.size());
        for (double v : s.values)
            EXPECT_GE(v, 0.0);
    }
}

TEST(IntervalSampling, SegmentedConfigGetsPerSegmentColumns)
{
    SimConfig cfg = configs::allTechniques(tinyConfig());
    cfg.intervalCycles = 100;
    SimResult r = Simulator(cfg).run();
    const auto &cols = r.intervals.columns();
    EXPECT_NE(std::find(cols.begin(), cols.end(), "lq_seg0"),
              cols.end());
    EXPECT_NE(std::find(cols.begin(), cols.end(), "lq_seg3"),
              cols.end());
}

TEST(IntervalSampling, JsonFileWritten)
{
    std::string path = tempPath("intervals.json");
    SimConfig cfg = tinyConfig();
    cfg.intervalCycles = 200;
    cfg.intervalJsonPath = path;
    Simulator(cfg).run();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_TRUE(jsonBalanced(ss.str()));
    EXPECT_NE(ss.str().find("lsqscale-intervals-v1"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(IntervalSampling, SamplingDoesNotPerturbTiming)
{
    SimConfig plain = tinyConfig();
    SimResult a = Simulator(plain).run();

    SimConfig sampled = tinyConfig();
    sampled.intervalCycles = 50;
    SimResult b = Simulator(sampled).run();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
}

// -------------------------------------------- tracing bit-identity ----

TEST(TraceIdentity, TracedRunMatchesUntracedRun)
{
    SimConfig plain = tinyConfig();
    SimResult a = Simulator(plain).run();

    std::string bin = tempPath("identity.evtrace");
    std::string kon = tempPath("identity.konata");
    SimConfig traced = tinyConfig();
    traced.trace.enabled = true;
    traced.trace.binaryPath = bin;
    traced.trace.konataPath = kon;
    SimResult b = Simulator(traced).run();

    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.sqSearches(), b.sqSearches());
    EXPECT_EQ(a.lqSearches(), b.lqSearches());
    std::remove(bin.c_str());
    std::remove(kon.c_str());
}

TEST(TraceIdentity, ParallelSweepWithPerJobTraceFiles)
{
    std::vector<NamedConfig> points = {
        {"base", [](const std::string &b) { return tinyConfig(b); }},
        {"pair",
         [](const std::string &b) {
             return configs::withPairPredictor(tinyConfig(b));
         }},
    };
    std::vector<std::string> benches = {"bzip", "gcc"};

    auto runSweep = [&](bool traceOn) {
        SweepOptions opts;
        opts.jobs = 4;
        opts.name = traceOn ? "obs_traced" : "obs_plain";
        Sweep sweep(points, benches, opts);
        sweep.setJobFn([traceOn](const SimConfig &cfg,
                                 const JobContext &ctx) {
            SimConfig c = cfg;
            if (traceOn) {
                c.trace.enabled = true;
                c.trace.binaryPath = tempPath(
                    strfmt("job_r%zu_c%zu.evtrace", ctx.row(),
                           ctx.col()));
            }
            return Simulator(c).run();
        });
        return sweep.run();
    };

    SweepOutcome plain = runSweep(false);
    SweepOutcome traced = runSweep(true);
    ASSERT_EQ(plain.grid.size(), traced.grid.size());
    for (std::size_t r = 0; r < plain.grid.size(); ++r) {
        for (std::size_t c = 0; c < plain.grid[r].size(); ++c) {
            const SimResult &p = plain.grid[r][c].result;
            const SimResult &t = traced.grid[r][c].result;
            EXPECT_EQ(p.cycles, t.cycles) << r << "," << c;
            EXPECT_EQ(p.committed, t.committed) << r << "," << c;
        }
    }
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            std::remove(tempPath(strfmt("job_r%zu_c%zu.evtrace", r, c))
                            .c_str());
}

// --------------------------------- event production (traced builds) ---

#ifdef LSQSCALE_TRACE

TEST(TraceEndToEnd, RetireEventsMatchCommittedCount)
{
    std::string path = tempPath("retire.evtrace");
    SimConfig cfg = tinyConfig();
    cfg.trace.enabled = true;
    cfg.trace.binaryPath = path;
    std::string err;
    ASSERT_TRUE(
        parseTraceEvents("retire", cfg.trace.eventMask, err));
    SimResult r = Simulator(cfg).run();

    auto recs = readTraceFile(path);
    EXPECT_EQ(recs.size(), r.committed);
    Cycle prev = 0;
    for (const auto &rc : recs) {
        EXPECT_EQ(rc.ev(), TraceEvent::Retire);
        EXPECT_GE(rc.cycle, prev); // retirement is in program order
        prev = rc.cycle;
    }
    std::remove(path.c_str());
}

TEST(TraceEndToEnd, KonataExportFromRealRunParses)
{
    std::string bin = tempPath("full.evtrace");
    std::string kon = tempPath("full.konata");
    SimConfig cfg = tinyConfig();
    cfg.trace.enabled = true;
    cfg.trace.binaryPath = bin;
    cfg.trace.konataPath = kon;
    SimResult r = Simulator(cfg).run();

    std::ifstream in(kon);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::vector<InstLifecycle> insts;
    std::string err;
    ASSERT_TRUE(parseO3PipeView(ss.str(), insts, err)) << err;
    // Instructions already in flight when the tracer attached (right
    // after warmup) retire inside the window without a Fetch record
    // and are rightly omitted, so the export can run a little short.
    EXPECT_LE(insts.size(), r.committed);
    EXPECT_GE(insts.size() + 512, r.committed);
    for (const auto &inst : insts) {
        EXPECT_NE(inst.retire, kNoCycle);
        if (inst.fetch != kNoCycle)
            EXPECT_LE(inst.fetch, inst.retire);
    }
    std::remove(bin.c_str());
    std::remove(kon.c_str());
}

TEST(TraceEndToEnd, SegmentedRunRecordsMultiSegmentSearches)
{
    std::string path = tempPath("seg.evtrace");
    SimConfig cfg = configs::allTechniques(tinyConfig());
    cfg.trace.enabled = true;
    cfg.trace.binaryPath = path;
    Simulator(cfg).run();

    StallAttribution att = attributeStalls(readTraceFile(path));
    EXPECT_GT(att.retired, 0u);
    EXPECT_GT(att.sqSearches + att.searchesSkipped, 0u);
    std::remove(path.c_str());
}

#else // !LSQSCALE_TRACE

TEST(TraceEndToEnd, HooksCompiledOutRecordNothing)
{
    // The zero-overhead contract: in a default build an attached
    // tracer sees no events at all (the hook sites don't exist).
    std::string path = tempPath("off.evtrace");
    SimConfig cfg = tinyConfig();
    cfg.trace.enabled = true;
    cfg.trace.binaryPath = path;
    Simulator(cfg).run();
    EXPECT_TRUE(readTraceFile(path).empty());
    std::remove(path.c_str());
}

#endif // LSQSCALE_TRACE

} // namespace
} // namespace lsqscale
