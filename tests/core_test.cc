/**
 * @file
 * Unit tests for src/core: renaming, ROB, issue queue, and whole-
 * pipeline behaviour of the Core.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "core/issue_queue.hh"
#include "core/phys_reg_file.hh"
#include "core/rob.hh"
#include "workload/benchmark_profile.hh"

using namespace lsqscale;

// ---------------------------------------------------- PhysRegFile -----

TEST(PhysRegFile, InitialMappingReady)
{
    PhysRegFile f(32, 64);
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_EQ(f.lookup(i), i);
        EXPECT_TRUE(f.isReady(f.lookup(i)));
    }
    EXPECT_EQ(f.freeRegs(), 32u);
}

TEST(PhysRegFile, RenameAllocatesNotReady)
{
    PhysRegFile f(32, 64);
    PhysReg prev = f.rename(5);
    EXPECT_EQ(prev, 5);
    PhysReg fresh = f.lookup(5);
    EXPECT_NE(fresh, prev);
    EXPECT_FALSE(f.isReady(fresh));
    f.setReady(fresh);
    EXPECT_TRUE(f.isReady(fresh));
}

TEST(PhysRegFile, FreeListExhaustion)
{
    PhysRegFile f(4, 8);
    for (int i = 0; i < 4; ++i)
        f.rename(0);
    EXPECT_FALSE(f.hasFreeReg());
    EXPECT_DEATH({ f.rename(0); }, "free register");
}

TEST(PhysRegFile, WalkBackRestoresMapping)
{
    PhysRegFile f(8, 16);
    PhysReg prev1 = f.rename(3);
    PhysReg p1 = f.lookup(3);
    PhysReg prev2 = f.rename(3);
    PhysReg p2 = f.lookup(3);
    EXPECT_EQ(prev2, p1);
    // Undo newest-first.
    f.restoreMapping(3, p2, prev2);
    EXPECT_EQ(f.lookup(3), p1);
    f.restoreMapping(3, p1, prev1);
    EXPECT_EQ(f.lookup(3), prev1);
    EXPECT_EQ(f.freeRegs(), 8u);
}

TEST(PhysRegFile, OutOfOrderWalkBackDies)
{
    PhysRegFile f(8, 16);
    PhysReg prev1 = f.rename(3);
    PhysReg p1 = f.lookup(3);
    f.rename(3);
    EXPECT_DEATH({ f.restoreMapping(3, p1, prev1); }, "walk-back");
}

TEST(PhysRegFile, CommitRecyclesPrev)
{
    PhysRegFile f(8, 16);
    std::size_t before = f.freeRegs();
    PhysReg prev = f.rename(2);
    EXPECT_EQ(f.freeRegs(), before - 1);
    f.releaseAtCommit(prev);
    EXPECT_EQ(f.freeRegs(), before);
}

// ------------------------------------------------------------ Rob -----

TEST(Rob, PushPopInOrder)
{
    Rob rob(4);
    MicroOp op;
    for (SeqNum i = 0; i < 4; ++i) {
        op.seq = i;
        rob.push(op, 0);
    }
    EXPECT_TRUE(rob.full());
    EXPECT_EQ(rob.head().op.seq, 0u);
    rob.popHead();
    EXPECT_EQ(rob.head().op.seq, 1u);
    EXPECT_EQ(rob.back().op.seq, 3u);
    rob.popBack();
    EXPECT_EQ(rob.size(), 2u);
}

TEST(Rob, FindBinarySearch)
{
    Rob rob(16);
    MicroOp op;
    for (SeqNum i = 0; i < 10; i += 2) {
        op.seq = i;
        rob.push(op, 0);
    }
    EXPECT_NE(rob.find(4), nullptr);
    EXPECT_EQ(rob.find(4)->op.seq, 4u);
    EXPECT_EQ(rob.find(5), nullptr);
    EXPECT_EQ(rob.find(100), nullptr);
}

TEST(Rob, OutOfOrderPushDies)
{
    Rob rob(4);
    MicroOp op;
    op.seq = 5;
    rob.push(op, 0);
    op.seq = 3;
    EXPECT_DEATH({ rob.push(op, 0); }, "program order");
}

TEST(Rob, OverflowDies)
{
    Rob rob(2);
    MicroOp op;
    op.seq = 0;
    rob.push(op, 0);
    op.seq = 1;
    rob.push(op, 0);
    op.seq = 2;
    EXPECT_DEATH({ rob.push(op, 0); }, "overflow");
}

// ----------------------------------------------------- IssueQueue -----

TEST(IssueQueue, SelectRespectsReadiness)
{
    IssueQueue iq(8);
    IqEntry e;
    e.seq = 1;
    e.src1 = 10;
    iq.push(e);
    e.seq = 2;
    e.src1 = kNoReg;
    iq.push(e);

    auto notReady = [](PhysReg, bool) { return false; };
    auto allReady = [](PhysReg, bool) { return true; };
    EXPECT_EQ(iq.selectReady(5, notReady).size(), 1u);   // only seq 2
    EXPECT_EQ(iq.selectReady(5, allReady).size(), 2u);
}

TEST(IssueQueue, SelectRespectsNotBefore)
{
    IssueQueue iq(8);
    IqEntry e;
    e.seq = 1;
    e.notBefore = 10;
    iq.push(e);
    auto allReady = [](PhysReg, bool) { return true; };
    EXPECT_TRUE(iq.selectReady(9, allReady).empty());
    EXPECT_EQ(iq.selectReady(10, allReady).size(), 1u);
}

TEST(IssueQueue, OldestFirstOrder)
{
    IssueQueue iq(8);
    IqEntry e;
    for (SeqNum s : {3u, 7u, 9u}) {
        e.seq = s;
        iq.push(e);
    }
    auto allReady = [](PhysReg, bool) { return true; };
    auto ready = iq.selectReady(0, allReady);
    ASSERT_EQ(ready.size(), 3u);
    EXPECT_EQ(ready[0]->seq, 3u);
    EXPECT_EQ(ready[2]->seq, 9u);
}

TEST(IssueQueue, RemoveAndSquash)
{
    IssueQueue iq(8);
    IqEntry e;
    for (SeqNum s = 0; s < 6; ++s) {
        e.seq = s;
        iq.push(e);
    }
    iq.remove(2);
    EXPECT_EQ(iq.size(), 5u);
    EXPECT_EQ(iq.find(2), nullptr);
    iq.squashFrom(4);
    EXPECT_EQ(iq.size(), 3u);   // 0, 1, 3
    EXPECT_NE(iq.find(3), nullptr);
    EXPECT_EQ(iq.find(5), nullptr);
}

TEST(IssueQueue, RemoveMissingDies)
{
    IssueQueue iq(4);
    EXPECT_DEATH({ iq.remove(9); }, "not present");
}

TEST(IssueQueue, FullStops)
{
    IssueQueue iq(2);
    IqEntry e;
    e.seq = 0;
    iq.push(e);
    e.seq = 1;
    iq.push(e);
    EXPECT_TRUE(iq.full());
    e.seq = 2;
    EXPECT_DEATH({ iq.push(e); }, "overflow");
}

// ----------------------------------------------------------- Core -----

namespace {

struct CoreFixture
{
    StatSet stats;
    Core core;

    explicit CoreFixture(const std::string &bench = "bzip",
                         CoreParams cp = CoreParams(),
                         LsqParams lp = LsqParams(),
                         std::uint64_t seed = 1)
        : core(cp, lp, MemoryParams(), profileFor(bench), seed, stats)
    {}
};

} // namespace

TEST(Core, MakesForwardProgress)
{
    CoreFixture f;
    f.core.run(5000);
    EXPECT_GE(f.core.committed(), 5000u);
    EXPECT_GT(f.core.cycle(), 0u);
    EXPECT_GT(f.core.ipc(), 0.1);
    EXPECT_LT(f.core.ipc(), 8.0);
}

TEST(Core, DeterministicAcrossRuns)
{
    CoreFixture a, b;
    a.core.run(3000);
    b.core.run(3000);
    EXPECT_EQ(a.core.cycle(), b.core.cycle());
    EXPECT_EQ(a.core.committed(), b.core.committed());
    EXPECT_EQ(a.stats.value("sq.searches"),
              b.stats.value("sq.searches"));
    EXPECT_EQ(a.stats.value("squash.total"),
              b.stats.value("squash.total"));
}

TEST(Core, DifferentSeedsDiffer)
{
    CoreFixture a("bzip", CoreParams(), LsqParams(), 1);
    CoreFixture b("bzip", CoreParams(), LsqParams(), 2);
    a.core.run(3000);
    b.core.run(3000);
    EXPECT_NE(a.core.cycle(), b.core.cycle());
}

TEST(Core, CommitsEveryClass)
{
    CoreFixture f("gcc");
    f.core.run(20000);
    EXPECT_GT(f.stats.value("core.committed.loads"), 1000u);
    EXPECT_GT(f.stats.value("core.committed.stores"), 500u);
    EXPECT_GT(f.stats.value("core.committed.branches"), 500u);
}

TEST(Core, ConventionalModeSearchCounts)
{
    CoreFixture f;
    f.core.run(10000);
    // Every load searches the SQ in the conventional base, possibly
    // several times through replays, never fewer than issued loads.
    EXPECT_GE(f.stats.value("sq.searches"),
              f.stats.value("core.committed.loads"));
    // Load-load checks by loads plus store checks populate the LQ.
    EXPECT_GE(f.stats.value("lq.searches.byload"),
              f.stats.value("core.committed.loads"));
}

TEST(Core, PairSchemeSearchesLess)
{
    LsqParams pair;
    pair.sqPolicy = SqSearchPolicy::Pair;
    pair.checkViolationsAtCommit = true;
    CoreFixture base("bzip");
    CoreFixture gated("bzip", CoreParams(), pair);
    base.core.run(20000);
    gated.core.run(20000);
    EXPECT_LT(gated.stats.value("sq.searches"),
              base.stats.value("sq.searches") / 2);
}

TEST(Core, PerfectPolicySearchesOnlyMatches)
{
    LsqParams perfect;
    perfect.sqPolicy = SqSearchPolicy::Perfect;
    CoreFixture f("bzip", CoreParams(), perfect);
    f.core.run(20000);
    // Every search the oracle allows finds a match.
    EXPECT_EQ(f.stats.value("sq.searches"),
              f.stats.value("sq.searches.matched"));
}

TEST(Core, LoadBufferEliminatesLoadLqSearches)
{
    LsqParams lb;
    lb.loadCheck = LoadCheckPolicy::LoadBuffer;
    lb.loadBufferEntries = 2;
    CoreFixture f("bzip", CoreParams(), lb);
    f.core.run(20000);
    EXPECT_EQ(f.stats.value("lq.searches.byload"), 0u);
    EXPECT_GT(f.stats.value("lb.searches"), 0u);
}

TEST(Core, MorePortsNeverSlower)
{
    LsqParams one = LsqParams();
    one.searchPorts = 1;
    LsqParams four = LsqParams();
    four.searchPorts = 4;
    CoreFixture p1("equake", CoreParams(), one);
    CoreFixture p4("equake", CoreParams(), four);
    p1.core.run(20000);
    p4.core.run(20000);
    // Identical traces; more search bandwidth can only help (allow a
    // sliver of slack for squash-timing noise).
    EXPECT_LE(p4.core.cycle(),
              p1.core.cycle() + p1.core.cycle() / 50);
}

TEST(Core, BiggerLsqNeverMuchSlower)
{
    LsqParams small;   // 32+32
    LsqParams big;
    big.lqEntries = 128;
    big.sqEntries = 128;
    CoreFixture s("swim", CoreParams(), small);
    CoreFixture b("swim", CoreParams(), big);
    s.core.run(20000);
    b.core.run(20000);
    EXPECT_LE(b.core.cycle(),
              s.core.cycle() + s.core.cycle() / 50);
}

TEST(Core, SquashesAreRecoverable)
{
    // perl has the richest alias behaviour; run long enough to see
    // squashes and verify the pipeline still retires everything.
    CoreFixture f("perl");
    f.core.run(30000);
    EXPECT_GT(f.stats.value("squash.total"), 0u);
    EXPECT_GE(f.core.committed(), 30000u);
}

TEST(Core, BranchPredictorIsUsed)
{
    CoreFixture f("gcc");
    f.core.run(20000);
    EXPECT_GT(f.core.branchPredictor().lookups(), 1000u);
    EXPECT_GT(f.stats.value("fetch.mispredicts"), 0u);
    // Accuracy is sane (> 70%).
    double acc = 1.0 - static_cast<double>(
                           f.core.branchPredictor().mispredicts()) /
                           f.core.branchPredictor().lookups();
    EXPECT_GT(acc, 0.7);
}

TEST(Core, OccupancyNeverExceedsCapacity)
{
    LsqParams p;
    p.lqEntries = 16;
    p.sqEntries = 16;
    CoreFixture f("mgrid", CoreParams(), p);
    for (int i = 0; i < 5000; ++i) {
        f.core.tick();
        ASSERT_LE(f.core.lsq().lqLive(), 16u);
        ASSERT_LE(f.core.lsq().sqLive(), 16u);
    }
}

TEST(Core, ScaledProcessorRunsWider)
{
    CoreParams wide;
    wide.fetchWidth = 12;
    wide.dispatchWidth = 12;
    wide.issueWidth = 12;
    wide.commitWidth = 12;
    wide.iqEntries = 96;
    CoreFixture f("mesa", wide);
    f.core.run(10000);
    EXPECT_GE(f.core.committed(), 10000u);
}

TEST(Core, InOrderLoadsSlower)
{
    LsqParams inorder;
    inorder.loadCheck = LoadCheckPolicy::InOrderAlwaysSearch;
    CoreFixture base("mcf");
    CoreFixture ord("mcf", CoreParams(), inorder);
    base.core.run(8000);
    ord.core.run(8000);
    EXPECT_GE(ord.core.cycle(), base.core.cycle());
}

TEST(Core, SegmentedCapacityHelpsLoadBound)
{
    LsqParams seg;
    seg.numSegments = 4;
    seg.lqEntries = 28;
    seg.sqEntries = 28;
    seg.allocPolicy = SegAllocPolicy::SelfCircular;
    CoreFixture base("art");
    CoreFixture wide("art", CoreParams(), seg);
    base.core.run(8000);
    wide.core.run(8000);
    EXPECT_LT(wide.core.cycle(), base.core.cycle());
}

TEST(Core, DebugDumpMentionsState)
{
    CoreFixture f;
    f.core.run(100);
    std::string d = f.core.debugDump();
    EXPECT_NE(d.find("rob="), std::string::npos);
    EXPECT_NE(d.find("lq="), std::string::npos);
}

// Every benchmark makes progress on the base machine.
class CoreAllBench : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CoreAllBench, RunsCleanly)
{
    CoreFixture f(GetParam());
    f.core.run(4000);
    EXPECT_GE(f.core.committed(), 4000u);
    EXPECT_GT(f.core.ipc(), 0.02);
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, CoreAllBench,
                         ::testing::ValuesIn(allBenchmarks()));

// --------------------------------------- invalidation extension -------

TEST(Core, InvalidationTrafficSquashesAndRecovers)
{
    CoreParams cp;
    cp.invalidationsPerKCycle = 20.0;   // heavy coherence traffic
    CoreFixture f("equake", cp);
    f.core.run(15000);
    EXPECT_GT(f.stats.value("inval.received"), 10u);
    EXPECT_GT(f.stats.value("squash.invalidation"), 0u);
    EXPECT_GE(f.core.committed(), 15000u);
}

TEST(Core, HeavyInvalidationTrafficCostsPerformance)
{
    // At a realistic rate the effect drowns in timing noise; at an
    // extreme rate (one invalidation every ~3 cycles, each taking an
    // LQ port and squashing matching loads) the cost must show.
    CoreParams quiet;
    CoreParams noisy;
    noisy.invalidationsPerKCycle = 300.0;
    CoreFixture q("equake", quiet);
    CoreFixture n("equake", noisy);
    q.core.run(12000);
    n.core.run(12000);
    EXPECT_GT(n.core.cycle(), q.core.cycle());
    EXPECT_GT(n.stats.value("squash.invalidation"), 20u);
}

TEST(Core, NoInvalidationsByDefault)
{
    CoreFixture f("equake");
    f.core.run(8000);
    EXPECT_EQ(f.stats.value("inval.received"), 0u);
}

// ------------------------------------ memory-dependence baselines -----

TEST(Core, TotalOrderNeverViolatesStoreLoad)
{
    CoreParams cp;
    cp.memDepPolicy = MemDepPolicy::TotalOrder;
    CoreFixture f("perl", cp);
    f.core.run(15000);
    EXPECT_EQ(f.stats.value("squash.storeload.exec"), 0u);
    EXPECT_GT(f.stats.value("loads.totalorder.wait"), 0u);
}

TEST(Core, BlindSpeculationViolatesMore)
{
    CoreParams blind;
    blind.memDepPolicy = MemDepPolicy::BlindSpeculation;
    CoreFixture b("perl", blind);
    CoreFixture s("perl");   // StoreSet default
    b.core.run(15000);
    s.core.run(15000);
    EXPECT_GT(b.stats.value("squash.storeload.exec"),
              s.stats.value("squash.storeload.exec"));
}

TEST(Core, DependenceDisciplineOrdering)
{
    // On an alias-heavy benchmark the predictor should not lose badly
    // to either baseline extreme.
    CoreParams blind, total;
    blind.memDepPolicy = MemDepPolicy::BlindSpeculation;
    total.memDepPolicy = MemDepPolicy::TotalOrder;
    CoreFixture b("vortex", blind);
    CoreFixture t("vortex", total);
    CoreFixture s("vortex");
    b.core.run(12000);
    t.core.run(12000);
    s.core.run(12000);
    EXPECT_LE(s.core.cycle(),
              std::max(b.core.cycle(), t.core.cycle()));
}

TEST(Core, CombinedQueueRunsEndToEnd)
{
    LsqParams lp;
    lp.combinedQueue = true;
    lp.numSegments = 4;
    lp.lqEntries = 28;   // 112 shared entries
    lp.searchPorts = 1;
    CoreFixture f("equake", CoreParams(), lp);
    f.core.run(10000);
    EXPECT_GE(f.core.committed(), 10000u);
    EXPECT_GT(f.core.ipc(), 0.1);
}

TEST(Core, CombinedQueueContentionOccursInPractice)
{
    // With one shared port and cross-direction searches, the paper's
    // Section 3.2 contention events actually fire on a real workload.
    LsqParams lp;
    lp.combinedQueue = true;
    lp.numSegments = 4;
    lp.lqEntries = 28;
    lp.searchPorts = 1;
    CoreFixture f("vortex", CoreParams(), lp);
    f.core.run(30000);
    EXPECT_GT(f.stats.value("lsq.contention.loads"), 0u);
}
