/**
 * @file
 * Tests for the deterministic fault-injection subsystem (src/inject/)
 * and the end-to-end crash campaign it enables under process
 * isolation (docs/ROBUSTNESS.md).
 *
 * The unit half covers the spec grammar, arming semantics, the io-fail
 * consumption point, and determinism of the silent predictor
 * corruption. The campaign half arms real faults inside forked
 * children (runCellInProcess) and checks that each fault lands with
 * the taxonomy's promised provenance — SIGSEGV for crash, SIGABRT for
 * abort, a watchdog TimedOut for hang — while the parent (this test
 * binary) survives untouched.
 */

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/proc_runner.hh"
#include "harness/sink.hh"
#include "inject/inject.hh"
#include "predictor/store_set.hh"
#include "sample/serialize.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

/** Fork-based campaign tests skip where sanitizers own the signals. */
constexpr bool kTsanBuild =
#if defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

constexpr bool kAsanBuild =
#if defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

#define SKIP_UNDER_TSAN()                                              \
    do {                                                               \
        if (kTsanBuild)                                                \
            GTEST_SKIP() << "fork-based campaign not run under TSan";  \
    } while (0)

/** A small simulation that still has thousands of measured cycles. */
SimConfig
tinyConfig(const std::string &bench)
{
    SimConfig cfg = configs::base(bench);
    cfg.instructions = 2000;
    cfg.warmup = 200;
    return cfg;
}

/**
 * Every test leaves the process-global fault state clean so ordering
 * between tests (and the simulations other tests run) cannot leak.
 */
class InjectTest : public ::testing::Test
{
  protected:
    void SetUp() override { inject::disarmFault(); }
    void TearDown() override { inject::disarmFault(); }
};

using InjectCampaignTest = InjectTest;

// ---------------------------------------------------- spec grammar ---

TEST_F(InjectTest, ParseFormatRoundTripsEveryKind)
{
    const char *specs[] = {
        "crash:0:5000",        "abort:1:123",       "hang:7:9",
        "corrupt-lsq:42:1000", "corrupt-pred:3:17", "io-fail:0:0",
    };
    for (const char *text : specs) {
        inject::FaultSpec spec;
        ASSERT_TRUE(inject::parseFaultSpec(text, spec)) << text;
        EXPECT_EQ(inject::formatFaultSpec(spec), text);
        EXPECT_STREQ(inject::faultKindName(spec.kind),
                     std::string(text).substr(0, std::string(text).find(':'))
                         .c_str());
    }
}

TEST_F(InjectTest, ParseRejectsMalformedSpecs)
{
    inject::FaultSpec spec;
    EXPECT_FALSE(inject::parseFaultSpec("", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash:0", spec));
    EXPECT_FALSE(inject::parseFaultSpec("meteor:0:5", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash:x:5", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash:0:y", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash:0:5:6", spec));
    // strtoull accepts sign prefixes ("-1" wraps to 2^64-1); the
    // grammar is digits only.
    EXPECT_FALSE(inject::parseFaultSpec("crash:-1:5", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash:1:-5", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash:+1:5", spec));
    EXPECT_FALSE(inject::parseFaultSpec("crash: 1:5", spec));
}

// -------------------------------------------------------- arming -----

TEST_F(InjectTest, ArmDisarmLifecycle)
{
    EXPECT_FALSE(inject::faultArmed());
    inject::FaultSpec spec;
    ASSERT_TRUE(inject::parseFaultSpec("corrupt-pred:9:100", spec));
    inject::armFault(spec);
    ASSERT_TRUE(inject::faultArmed());
    EXPECT_EQ(inject::formatFaultSpec(inject::armedFault()),
              "corrupt-pred:9:100");
    inject::disarmFault();
    EXPECT_FALSE(inject::faultArmed());
}

TEST_F(InjectTest, EnvNeverOverridesExplicitArm)
{
    // --inject beats LSQSCALE_INJECT whatever state the once-guard is
    // in: armFromEnv must be a no-op while a fault is armed.
    inject::FaultSpec spec;
    ASSERT_TRUE(inject::parseFaultSpec("abort:0:7", spec));
    inject::armFault(spec);
    setenv("LSQSCALE_INJECT", "crash:0:1", 1);
    inject::armFromEnv();
    EXPECT_EQ(inject::formatFaultSpec(inject::armedFault()),
              "abort:0:7");
    unsetenv("LSQSCALE_INJECT");
}

// -------------------------------------------------------- io-fail ----

TEST_F(InjectTest, IoFailureFiresOnceAtTheTriggerCycle)
{
    inject::FaultSpec spec;
    ASSERT_TRUE(inject::parseFaultSpec("io-fail:0:5", spec));
    inject::armFault(spec);
    inject::beginMeasurement(1000);

    EXPECT_FALSE(inject::consumeIoFailure()); // not fired yet
    EXPECT_EQ(inject::poll(1004), inject::Action::None);
    EXPECT_FALSE(inject::consumeIoFailure());
    EXPECT_EQ(inject::poll(1005), inject::Action::None); // fires here
    EXPECT_TRUE(inject::consumeIoFailure());
    EXPECT_FALSE(inject::consumeIoFailure()); // consumed exactly once
}

TEST_F(InjectTest, IoFailureFailsExactlyOneHarnessWrite)
{
    std::string path = testing::TempDir() + "/iofail.txt";
    std::remove(path.c_str());

    inject::FaultSpec spec;
    ASSERT_TRUE(inject::parseFaultSpec("io-fail:0:0", spec));
    inject::armFault(spec);
    inject::beginMeasurement(0);
    (void)inject::poll(0);

    EXPECT_FALSE(writeFileCreatingDirs(path, "doomed"));
    EXPECT_EQ(std::fopen(path.c_str(), "rb"), nullptr);
    EXPECT_TRUE(writeFileCreatingDirs(path, "fine"));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    std::remove(path.c_str());
}

// ------------------------------------------- silent corruption -------

TEST_F(InjectTest, PredictorCorruptionIsDeterministicInSeed)
{
    auto corruptedState = [](std::uint64_t seed) {
        StoreSetPredictor pred;
        // Populate some table state first so there is something to
        // scramble.
        for (Pc pc = 0; pc < 64; ++pc)
            pred.trainPair(pc * 8, pc * 8 + 4);
        pred.injectStateCorruption(seed);
        SerialWriter w;
        pred.saveState(w);
        return w.buffer();
    };
    EXPECT_EQ(corruptedState(42), corruptedState(42));
    EXPECT_NE(corruptedState(42), corruptedState(43));
    EXPECT_NE(corruptedState(42), corruptedState(0));
}

// ------------------------------------------------- fault campaign ----

/** Run a tiny simulation in a forked child with @p spec armed there. */
ProcOutcome
runInjectedChild(const std::string &specText,
                 std::chrono::milliseconds watchdog =
                     std::chrono::milliseconds(0))
{
    ProcOptions po;
    po.watchdog = watchdog;
    po.hardTimeout = std::chrono::milliseconds(0);
    return runCellInProcess(
        [specText] {
            inject::FaultSpec spec;
            if (!inject::parseFaultSpec(specText, spec))
                throw std::runtime_error("bad spec in test");
            inject::armFault(spec);
            Simulator sim(tinyConfig("bzip"));
            return sim.run();
        },
        po);
}

TEST_F(InjectCampaignTest, CrashFaultDiesBySigsegvInTheChild)
{
    SKIP_UNDER_TSAN();
    if (kAsanBuild)
        GTEST_SKIP() << "ASan intercepts SIGSEGV provenance";
    ProcOutcome out = runInjectedChild("crash:0:50");
    EXPECT_EQ(out.status, ProcStatus::Crashed);
    EXPECT_EQ(out.termSignal, SIGSEGV);
    EXPECT_NE(out.error.find("signal"), std::string::npos);
}

TEST_F(InjectCampaignTest, AbortFaultDiesBySigabrtWithAssertTail)
{
    SKIP_UNDER_TSAN();
    ProcOutcome out = runInjectedChild("abort:0:50");
    EXPECT_EQ(out.status, ProcStatus::Crashed);
    EXPECT_EQ(out.termSignal, SIGABRT);
    // The LSQ_ASSERT cold path printed to the child's stderr, which the
    // parent captured as provenance.
    EXPECT_NE(out.stderrTail.find("inject"), std::string::npos);
}

TEST_F(InjectCampaignTest, HangFaultIsReapedByTheWatchdog)
{
    SKIP_UNDER_TSAN();
    ProcOutcome out =
        runInjectedChild("hang:0:50", std::chrono::milliseconds(300));
    EXPECT_EQ(out.status, ProcStatus::TimedOut);
    EXPECT_NE(out.error.find("heartbeat"), std::string::npos);
}

TEST_F(InjectCampaignTest, PredictorCorruptionIsSilent)
{
    SKIP_UNDER_TSAN();
    // corrupt-pred is the taxonomy's silent fault: the child finishes
    // cleanly and ships a (timing-shifted) result.
    ProcOutcome out = runInjectedChild("corrupt-pred:42:50");
    EXPECT_EQ(out.status, ProcStatus::Ok);
    EXPECT_EQ(out.termSignal, 0);
    EXPECT_GT(out.result.committed, 0u);
}

#ifdef LSQSCALE_CHECKER
TEST_F(InjectCampaignTest, LsqCorruptionIsCaughtByTheChecker)
{
    SKIP_UNDER_TSAN();
    // Under -DLSQ_CHECKER=ON the ordering oracle detects the corrupted
    // store-queue addresses and panics — which process isolation turns
    // into a contained SIGABRT with the panic text as provenance.
    ProcOutcome out = runInjectedChild("corrupt-lsq:42:50");
    EXPECT_EQ(out.status, ProcStatus::Crashed);
    EXPECT_EQ(out.termSignal, SIGABRT);
}
#endif

TEST_F(InjectCampaignTest, ConcurrentForksDoNotCrossPoisonCells)
{
    SKIP_UNDER_TSAN();
    // Regression: a child forked by another worker between this
    // worker's pipe() and the parent-side close of the write ends used
    // to inherit them, so the parent saw EOF only when the unrelated
    // child exited; with a watchdog shorter than that child's
    // lifetime, the parent killed a zombie and a healthy, completed
    // cell came back TimedOut. Fast cells (tight watchdog) race
    // against long-lived slow cells here; every one must be Ok.
    constexpr int kFast = 4;
    constexpr int kSlow = 4;
    std::array<ProcOutcome, kFast + kSlow> outs;
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int i = 0; i < kFast + kSlow; ++i) {
        threads.emplace_back([i, &outs, &ready, &go] {
            const bool fast = i < kFast;
            ProcOptions po;
            po.watchdog = std::chrono::milliseconds(fast ? 1000 : 0);
            po.hardTimeout = std::chrono::milliseconds(0);
            ready.fetch_add(1);
            while (!go.load())
                std::this_thread::yield();
            outs[i] = runCellInProcess(
                [fast] {
                    if (!fast)
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(2200));
                    SimResult r;
                    r.benchmark = fast ? "fast" : "slow";
                    r.cycles = 1;
                    r.committed = 1;
                    return r;
                },
                po);
        });
    }
    while (ready.load() != kFast + kSlow)
        std::this_thread::yield();
    go.store(true);
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < kFast + kSlow; ++i) {
        EXPECT_EQ(outs[i].status, ProcStatus::Ok)
            << "cell " << i << ": " << outs[i].error;
        EXPECT_EQ(outs[i].result.cycles, 1u) << "cell " << i;
    }
}

TEST_F(InjectCampaignTest, UninjectedChildMatchesInProcessRun)
{
    SKIP_UNDER_TSAN();
    // Control leg: no fault armed, the forked run is bit-identical to
    // the same simulation run in-process.
    ProcOptions po;
    ProcOutcome out = runCellInProcess(
        [] {
            Simulator sim(tinyConfig("bzip"));
            return sim.run();
        },
        po);
    ASSERT_EQ(out.status, ProcStatus::Ok);
    Simulator sim(tinyConfig("bzip"));
    SimResult local = sim.run();
    EXPECT_EQ(out.result.cycles, local.cycles);
    EXPECT_EQ(out.result.committed, local.committed);
    EXPECT_EQ(out.result.stats.dump(), local.stats.dump());
}

} // namespace
} // namespace lsqscale
