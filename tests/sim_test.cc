/**
 * @file
 * Unit tests for src/sim: configuration presets, the Simulator, and
 * the ExperimentRunner plumbing every bench uses.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

using namespace lsqscale;

// --------------------------------------------------------- config -----

TEST(SimConfig, BaseIsTable1)
{
    SimConfig c = configs::base("bzip");
    EXPECT_EQ(c.benchmark, "bzip");
    EXPECT_EQ(c.core.robEntries, 256u);
    EXPECT_EQ(c.core.iqEntries, 64u);
    EXPECT_EQ(c.core.issueWidth, 8u);
    EXPECT_EQ(c.core.intPhysRegs, 356u);
    EXPECT_EQ(c.core.fpPhysRegs, 356u);
    EXPECT_EQ(c.lsq.lqEntries, 32u);
    EXPECT_EQ(c.lsq.sqEntries, 32u);
    EXPECT_EQ(c.lsq.searchPorts, 2u);
    EXPECT_EQ(c.lsq.numSegments, 1u);
    EXPECT_EQ(c.lsq.sqPolicy, SqSearchPolicy::Always);
    EXPECT_EQ(c.core.storeSet.ssitEntries, 4096u);
    EXPECT_EQ(c.core.storeSet.lfstEntries, 128u);
    EXPECT_EQ(c.core.branchPredictor.tableEntries, 4096u);
}

TEST(SimConfig, Modifiers)
{
    SimConfig c = configs::withPorts(configs::base("gcc"), 4);
    EXPECT_EQ(c.lsq.searchPorts, 4u);

    c = configs::withPairPredictor(configs::base("gcc"));
    EXPECT_EQ(c.lsq.sqPolicy, SqSearchPolicy::Pair);
    EXPECT_TRUE(c.lsq.checkViolationsAtCommit);

    c = configs::withPerfectPredictor(configs::base("gcc"));
    EXPECT_EQ(c.lsq.sqPolicy, SqSearchPolicy::Perfect);
    EXPECT_FALSE(c.lsq.checkViolationsAtCommit);

    c = configs::withAggressivePredictor(configs::base("gcc"));
    EXPECT_EQ(c.lsq.sqPolicy, SqSearchPolicy::Pair);
    EXPECT_TRUE(c.core.storeSet.aliasFree);

    c = configs::withLoadBuffer(configs::base("gcc"), 2);
    EXPECT_EQ(c.lsq.loadCheck, LoadCheckPolicy::LoadBuffer);
    EXPECT_EQ(c.lsq.loadBufferEntries, 2u);

    c = configs::withLoadBuffer(configs::base("gcc"), 0);
    EXPECT_EQ(c.lsq.loadCheck, LoadCheckPolicy::InOrder);

    c = configs::withInOrderLoads(configs::base("gcc"), true);
    EXPECT_EQ(c.lsq.loadCheck, LoadCheckPolicy::InOrderAlwaysSearch);

    c = configs::withSegmentation(configs::base("gcc"), 4, 28,
                                  SegAllocPolicy::SelfCircular);
    EXPECT_EQ(c.lsq.numSegments, 4u);
    EXPECT_EQ(c.lsq.lqEntries, 28u);
    EXPECT_EQ(c.lsq.totalLqEntries(), 112u);

    c = configs::withQueueSize(configs::base("gcc"), 128);
    EXPECT_EQ(c.lsq.lqEntries, 128u);
    EXPECT_EQ(c.lsq.numSegments, 1u);
}

TEST(SimConfig, ScaledProcessor)
{
    SimConfig c = configs::scaledProcessor(configs::base("gcc"));
    EXPECT_EQ(c.core.issueWidth, 12u);
    EXPECT_EQ(c.core.iqEntries, 96u);
    EXPECT_EQ(c.memory.l1d.hitLatency, 3u);
}

TEST(SimConfig, AllTechniques)
{
    SimConfig c = configs::allTechniques(configs::base("gcc"));
    EXPECT_EQ(c.lsq.sqPolicy, SqSearchPolicy::Pair);
    EXPECT_EQ(c.lsq.loadCheck, LoadCheckPolicy::LoadBuffer);
    EXPECT_EQ(c.lsq.loadBufferEntries, 2u);
    EXPECT_EQ(c.lsq.numSegments, 4u);
    EXPECT_EQ(c.lsq.searchPorts, 1u);
    EXPECT_TRUE(c.lsq.checkViolationsAtCommit);
}

// ------------------------------------------------------ simulator -----

TEST(Simulator, RunsAndMeasures)
{
    SimConfig c = configs::base("bzip");
    c.instructions = 5000;
    c.warmup = 1000;
    SimResult r = Simulator(c).run();
    EXPECT_EQ(r.benchmark, "bzip");
    EXPECT_GE(r.committed, 5000u);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc(), 0.0);
    EXPECT_GT(r.sqSearches(), 0u);
    EXPECT_GT(r.lqSearches(), 0u);
}

TEST(Simulator, DeterministicResults)
{
    SimConfig c = configs::base("gzip");
    c.instructions = 4000;
    SimResult a = Simulator(c).run();
    SimResult b = Simulator(c).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.sqSearches(), b.sqSearches());
}

TEST(Simulator, WarmupExcludedFromStats)
{
    SimConfig c = configs::base("bzip");
    c.instructions = 4000;
    c.warmup = 1000;
    SimResult r = Simulator(c).run();
    // Only the measurement window is counted.
    EXPECT_EQ(r.stats.value("core.committed"), r.committed);
    EXPECT_LE(r.committed, 4100u);
}

TEST(Simulator, CacheStatsExported)
{
    SimConfig c = configs::base("mcf");
    c.instructions = 4000;
    SimResult r = Simulator(c).run();
    EXPECT_GT(r.stats.value("l1d.hits") + r.stats.value("l1d.misses"),
              500u);
    // mcf misses a lot.
    EXPECT_GT(r.stats.value("l1d.misses"), 100u);
}

TEST(Simulator, EnvOverrideInstructionCount)
{
    setenv("LSQSCALE_INSTS", "1234", 1);
    EXPECT_EQ(effectiveInstructions(999999), 1234u);
    unsetenv("LSQSCALE_INSTS");
    EXPECT_EQ(effectiveInstructions(999999), 999999u);
}

// ----------------------------------------------- experiment runner ----

TEST(ExperimentRunner, AveragesSplitIntFp)
{
    ExperimentRunner r;
    std::vector<double> v(18, 0.0);
    // INT benchmarks are the first nine in paper order.
    for (int i = 0; i < 9; ++i)
        v[i] = 1.0;
    EXPECT_DOUBLE_EQ(r.intAvg(v), 1.0);
    EXPECT_DOUBLE_EQ(r.fpAvg(v), 0.0);
}

TEST(ExperimentRunner, SpeedupsAndNormalization)
{
    ExperimentRunner r({"bzip"});
    SimResult base, test;
    base.benchmark = test.benchmark = "bzip";
    base.cycles = 1000;
    base.committed = 1000;
    test.cycles = 800;
    test.committed = 1000;
    auto sp = r.speedups({base}, {test});
    ASSERT_EQ(sp.size(), 1u);
    EXPECT_NEAR(sp[0], 0.25, 1e-9);

    base.stats.counter("sq.searches").inc(100);
    test.stats.counter("sq.searches").inc(25);
    auto norm = r.normalized({base}, {test}, [](const SimResult &x) {
        return static_cast<double>(x.sqSearches());
    });
    EXPECT_DOUBLE_EQ(norm[0], 0.25);
}

TEST(ExperimentRunner, TableRendersAverages)
{
    ExperimentRunner r({"bzip", "ammp"});
    std::vector<double> col = {0.10, 0.30};
    std::string out = r.table("T", {{"c", col}}, true);
    EXPECT_NE(out.find("Int.Avg"), std::string::npos);
    EXPECT_NE(out.find("Fp.Avg"), std::string::npos);
    EXPECT_NE(out.find("+10.0%"), std::string::npos);
    EXPECT_NE(out.find("+30.0%"), std::string::npos);
}

TEST(ExperimentRunner, RunProducesPerBenchmarkResults)
{
    ExperimentRunner r({"bzip", "mgrid"});
    NamedConfig cfg{"t", [](const std::string &b) {
                        SimConfig c = configs::base(b);
                        c.instructions = 2000;
                        c.warmup = 500;
                        return c;
                    }};
    ResultRow row = r.run(cfg);
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0].benchmark, "bzip");
    EXPECT_EQ(row[1].benchmark, "mgrid");
    EXPECT_GT(row[0].ipc(), 0.0);
}

TEST(ExperimentRunner, BenchEnvOverride)
{
    setenv("LSQSCALE_BENCH", "mgrid,vortex", 1);
    ExperimentRunner r;
    unsetenv("LSQSCALE_BENCH");
    ASSERT_EQ(r.benchmarks().size(), 2u);
    EXPECT_EQ(r.benchmarks()[0], "mgrid");
    EXPECT_EQ(r.benchmarks()[1], "vortex");
}

TEST(ExperimentRunner, EmptyEnvOverrideIgnored)
{
    setenv("LSQSCALE_BENCH", "", 1);
    ExperimentRunner r;
    unsetenv("LSQSCALE_BENCH");
    EXPECT_EQ(r.benchmarks().size(), allBenchmarks().size());
}

TEST(ExperimentRunner, CsvRendering)
{
    ExperimentRunner r({"bzip", "ammp"});
    std::string out = r.csv({{"speedup", {0.5, -0.25}}});
    EXPECT_EQ(out, "benchmark,speedup\n"
                   "bzip,0.500000\n"
                   "ammp,-0.250000\n");
}

TEST(ExperimentRunner, CsvDirEnvWritesFile)
{
    ExperimentRunner r({"bzip"});
    std::string dir = ::testing::TempDir();
    setenv("LSQSCALE_CSV_DIR", dir.c_str(), 1);
    r.table("Figure 99: csv test!", {{"c", {1.0}}}, false);
    unsetenv("LSQSCALE_CSV_DIR");
    std::string path = dir + "/figure_99_csv_test.csv";
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[128] = {};
    std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_NE(std::string(buf).find("benchmark,c"), std::string::npos);
}
