/**
 * @file
 * Integration tests: whole-pipeline properties across configurations —
 * cheap versions of the paper's experiments, checked for *shape*.
 */

#include <gtest/gtest.h>

#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "workload/benchmark_profile.hh"

using namespace lsqscale;

namespace {

SimResult
runQuick(SimConfig cfg, std::uint64_t insts = 15000)
{
    cfg.instructions = insts;
    cfg.warmup = insts / 4;
    return Simulator(std::move(cfg)).run();
}

} // namespace

// ------------------------------------------ bandwidth properties ------

TEST(Integration, PairPredictorNeverSearchesMoreThanBase)
{
    for (const char *b : {"bzip", "mgrid", "vortex"}) {
        SimResult base = runQuick(configs::base(b));
        SimResult pair = runQuick(configs::withPairPredictor(
            configs::base(b)));
        EXPECT_LE(pair.sqSearches(), base.sqSearches()) << b;
    }
}

TEST(Integration, PerfectSearchesLeastAmongPredictors)
{
    SimResult perfect = runQuick(configs::withPerfectPredictor(
        configs::base("gcc")));
    SimResult pair = runQuick(configs::withPairPredictor(
        configs::base("gcc")));
    EXPECT_LE(perfect.sqSearches(), pair.sqSearches());
}

TEST(Integration, LoadBufferCutsLqDemand)
{
    for (const char *b : {"bzip", "equake"}) {
        SimResult base = runQuick(configs::base(b));
        SimResult lb = runQuick(configs::withLoadBuffer(
            configs::base(b), 2));
        EXPECT_LT(lb.lqSearches(), base.lqSearches()) << b;
        // Store-initiated checks remain.
        EXPECT_GT(lb.stats.value("lq.searches.bystore"), 0u) << b;
        EXPECT_EQ(lb.stats.value("lq.searches.byload"), 0u) << b;
    }
}

TEST(Integration, MgridBarelySearchesUnderPair)
{
    // mgrid: 51% loads, 2% stores — the paper's best case.
    SimResult pair = runQuick(configs::withPairPredictor(
        configs::base("mgrid")));
    SimResult base = runQuick(configs::base("mgrid"));
    EXPECT_LT(static_cast<double>(pair.sqSearches()),
              0.1 * static_cast<double>(base.sqSearches()));
}

// --------------------------------------------- ordering invariants ----

TEST(Integration, CommittedInstructionCountsMatchAcrossConfigs)
{
    // Same trace, different microarchitecture: the committed-path
    // instruction mix is identical.
    SimResult a = runQuick(configs::base("parser"));
    SimResult b = runQuick(configs::withPorts(
        configs::base("parser"), 4));
    // The committed path is the same trace; the measurement window
    // boundary may differ by up to a commit group.
    EXPECT_NEAR(static_cast<double>(
                    a.stats.value("core.committed.loads")),
                static_cast<double>(
                    b.stats.value("core.committed.loads")),
                16.0);
    EXPECT_NEAR(static_cast<double>(
                    a.stats.value("core.committed.stores")),
                static_cast<double>(
                    b.stats.value("core.committed.stores")),
                16.0);
    EXPECT_NEAR(static_cast<double>(
                    a.stats.value("core.committed.branches")),
                static_cast<double>(
                    b.stats.value("core.committed.branches")),
                16.0);
}

TEST(Integration, NoAliasProfileMeansNoViolations)
{
    // mgrid/wupwise have almost no same-address traffic; squashes are
    // essentially absent.
    SimResult r = runQuick(configs::base("mgrid"));
    EXPECT_LT(r.stats.value("squash.total"), 20u);
}

TEST(Integration, CommitSchemeMovesDetectionToCommit)
{
    SimResult pair = runQuick(configs::withPairPredictor(
        configs::base("perl")), 30000);
    EXPECT_EQ(pair.stats.value("squash.storeload.exec"), 0u);
    SimResult base = runQuick(configs::base("perl"), 30000);
    EXPECT_EQ(base.stats.value("squash.storeload.commit"), 0u);
}

TEST(Integration, ForwardingHappensInAliasHeavyBenchmarks)
{
    SimResult r = runQuick(configs::base("vortex"), 30000);
    EXPECT_GT(r.stats.value("loads.forwarded"), 100u);
    EXPECT_EQ(r.stats.value("loads.forwarded"),
              r.stats.value("sq.searches.matched"));
}

// ----------------------------------------------- capacity shapes ------

TEST(Integration, SegmentationHelpsMemoryBoundFp)
{
    for (const char *b : {"art", "swim"}) {
        SimResult base = runQuick(configs::base(b));
        SimResult seg = runQuick(configs::withSegmentation(
            configs::base(b), 4, 28, SegAllocPolicy::SelfCircular));
        EXPECT_GT(seg.ipc(), base.ipc() * 1.1) << b;
    }
}

TEST(Integration, SelfCircularAtLeastAsGoodAsNoSelfCircular)
{
    double selfTotal = 0, noSelfTotal = 0;
    for (const char *b : {"bzip", "perl", "equake"}) {
        selfTotal += runQuick(configs::withSegmentation(
                                  configs::base(b), 4, 28,
                                  SegAllocPolicy::SelfCircular))
                         .ipc();
        noSelfTotal += runQuick(configs::withSegmentation(
                                    configs::base(b), 4, 28,
                                    SegAllocPolicy::NoSelfCircular))
                           .ipc();
    }
    EXPECT_GE(selfTotal, noSelfTotal * 0.99);
}

TEST(Integration, SegmentedSearchesMostlyOneSegment)
{
    SimResult seg = runQuick(configs::withSegmentation(
        configs::base("twolf"), 4, 28, SegAllocPolicy::SelfCircular));
    const Histogram &h = seg.stats.getHistogram("sq.search.segments");
    ASSERT_GT(h.samples(), 0u);
    EXPECT_GT(h.fraction(1) + h.fraction(2), 0.8);
}

// --------------------------------------------------- port shapes ------

TEST(Integration, OnePortConventionalLosesOnWideWorkloads)
{
    SimResult base = runQuick(configs::base("mesa"));
    SimResult one = runQuick(configs::withPorts(
        configs::base("mesa"), 1));
    EXPECT_LT(one.ipc(), base.ipc());
}

TEST(Integration, TechniquesRescueOnePort)
{
    SimConfig tech = configs::withLoadBuffer(
        configs::withPairPredictor(configs::base("mesa")), 2);
    SimResult one = runQuick(configs::withPorts(
        configs::base("mesa"), 1));
    SimResult oneTech = runQuick(configs::withPorts(tech, 1));
    EXPECT_GT(oneTech.ipc(), one.ipc());
}

TEST(Integration, AllTechniquesBeatBaseOnFp)
{
    SimResult base = runQuick(configs::base("mgrid"));
    SimResult all = runQuick(configs::allTechniques(
        configs::base("mgrid")));
    EXPECT_GT(all.ipc(), base.ipc());
}

// ------------------------------------------------- table 3/4 style ----

TEST(Integration, OooLoadsAreFew)
{
    SimResult r = runQuick(configs::base("mgrid"));
    EXPECT_LT(r.stats.getHistogram("ooo.inflight").mean(), 1.0);
}

TEST(Integration, PairSquashRateIsSmall)
{
    SimResult pair = runQuick(configs::withPairPredictor(
        configs::base("bzip")), 30000);
    double rate =
        static_cast<double>(
            pair.stats.value("squash.storeload.commit")) /
        static_cast<double>(pair.committed);
    EXPECT_LT(rate, 0.01);
}

TEST(Integration, OccupancyTracksMemoryBoundedness)
{
    // Memory-bound FP fills the LQ; an ILP-rich INT benchmark does not.
    SimResult art = runQuick(configs::base("art"));
    SimResult bzip = runQuick(configs::base("bzip"));
    EXPECT_GT(art.stats.getHistogram("lq.occupancy").mean(),
              bzip.stats.getHistogram("lq.occupancy").mean());
}

// ------------------------------------- seed robustness (property) -----

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, PipelineInvariantsHoldAcrossSeeds)
{
    SimConfig cfg = configs::allTechniques(configs::base("perl"));
    cfg.seed = GetParam();
    cfg.instructions = 8000;
    cfg.warmup = 2000;
    SimResult r = Simulator(cfg).run();
    EXPECT_GE(r.committed, 8000u);
    EXPECT_GT(r.ipc(), 0.05);
    // The pair scheme never performs execute-time store searches.
    EXPECT_EQ(r.stats.value("squash.storeload.exec"), 0u);
    // Loads never search the LQ with a load buffer.
    EXPECT_EQ(r.stats.value("lq.searches.byload"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 12345u));
