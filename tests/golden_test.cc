/**
 * @file
 * Golden-run regression suite: five design points at a small pinned
 * instruction count, rendered through the same JSON path the CLI
 * uses, diffed byte-for-byte against references committed under
 * tests/golden/. Any timing change — intended or not — shows up as a
 * diff here before it shows up as a mysterious table shift in the
 * paper figures.
 *
 * To bless a new baseline after an intended change:
 *
 *   scripts/refresh_golden.sh [BUILD_DIR]
 *
 * which reruns this binary with LSQSCALE_REFRESH_GOLDEN=1 so it
 * rewrites the reference files instead of comparing.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include <fstream>
#include <string>

#include "sim/cli.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

using namespace lsqscale;

namespace {

class GoldenTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("LSQSCALE_INSTS");
        unsetenv("LSQSCALE_SAMPLE");
        unsetenv("LSQSCALE_INTERVAL");
    }
};

bool
refreshMode()
{
    const char *env = std::getenv("LSQSCALE_REFRESH_GOLDEN");
    return env && *env && std::string(env) != "0";
}

std::string
goldenPath(const std::string &name)
{
    return std::string(LSQSCALE_GOLDEN_DIR) + "/" + name + ".json";
}

/// The checker build flavor (-DLSQ_CHECKER=ON) shadow-executes every
/// run and adds "check.*" counters; those are documented as the only
/// permitted divergence from the release flavor (docs/CHECKING.md).
/// Strip them so the committed release-flavor references stay valid
/// in every flavor CI builds.
std::string
stripCheckerCounters(const std::string &json)
{
    std::string out;
    out.reserve(json.size());
    std::size_t pos = 0;
    while (pos < json.size()) {
        std::size_t eol = json.find('\n', pos);
        if (eol == std::string::npos)
            eol = json.size() - 1;
        std::string line = json.substr(pos, eol - pos + 1);
        if (line.find("\"check.") == std::string::npos)
            out += line;
        pos = eol + 1;
    }
    return out;
}

void
checkGolden(SimConfig cfg, const std::string &name)
{
    cfg.instructions = 25000;
    SimResult result = Simulator(cfg).run();
    std::string json = stripCheckerCounters(resultToJson(result, cfg));

    std::string path = goldenPath(name);
    if (refreshMode()) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << json;
        GTEST_SKIP() << "refreshed " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden file " << path
        << " (run scripts/refresh_golden.sh)";
    std::string expected((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(json, expected)
        << name << ": output drifted from the committed reference; "
        << "if the change is intended, rerun scripts/refresh_golden.sh "
        << "and commit the diff";
}

} // namespace

TEST_F(GoldenTest, BaseBzip)
{
    checkGolden(configs::base("bzip"), "base_bzip");
}

TEST_F(GoldenTest, FourPortGcc)
{
    checkGolden(configs::withPorts(configs::base("gcc"), 4),
                "ports4_gcc");
}

TEST_F(GoldenTest, SegmentedArt)
{
    checkGolden(configs::withSegmentation(configs::base("art"), 4, 8,
                                          SegAllocPolicy::SelfCircular),
                "segmented_art");
}

TEST_F(GoldenTest, LoadBufferMcf)
{
    checkGolden(configs::withLoadBuffer(configs::base("mcf"), 2),
                "loadbuffer_mcf");
}

TEST_F(GoldenTest, PairPredictorEquake)
{
    checkGolden(configs::withPairPredictor(configs::base("equake")),
                "pair_equake");
}

TEST_F(GoldenTest, SampledBaseBzip)
{
    // The sampled-run JSON block is part of the CLI surface too: pin
    // it (exercises the jittered sampler end to end, deterministic by
    // design).
    SimConfig cfg = configs::base("bzip");
    ASSERT_TRUE(parseSampleSpec("2000:500:500", cfg.sample));
    checkGolden(cfg, "sampled_bzip");
}
