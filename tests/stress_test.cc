/**
 * @file
 * Stress tests: run the full pipeline with deliberately tiny or
 * extreme structures so every stall/recovery path is exercised, and
 * sweep full design points end-to-end.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "workload/benchmark_profile.hh"

using namespace lsqscale;

namespace {

void
runCore(const CoreParams &cp, const LsqParams &lp,
        const MemoryParams &mp, const std::string &bench,
        std::uint64_t insts)
{
    StatSet stats;
    Core core(cp, lp, mp, profileFor(bench), 1, stats);
    core.run(insts);
    EXPECT_GE(core.committed(), insts);
    EXPECT_GT(core.ipc(), 0.005);
}

} // namespace

TEST(Stress, TinyRob)
{
    CoreParams cp;
    cp.robEntries = 8;
    cp.iqEntries = 8;
    runCore(cp, LsqParams(), MemoryParams(), "gcc", 5000);
}

TEST(Stress, TinyIssueQueue)
{
    CoreParams cp;
    cp.iqEntries = 4;
    runCore(cp, LsqParams(), MemoryParams(), "equake", 5000);
}

TEST(Stress, MinimalPhysicalRegisters)
{
    // Just above the architectural minimum: rename stalls constantly.
    CoreParams cp;
    cp.intPhysRegs = 40;
    cp.fpPhysRegs = 40;
    runCore(cp, LsqParams(), MemoryParams(), "bzip", 5000);
}

TEST(Stress, SingleWidePipeline)
{
    CoreParams cp;
    cp.fetchWidth = 1;
    cp.dispatchWidth = 1;
    cp.issueWidth = 1;
    cp.commitWidth = 1;
    runCore(cp, LsqParams(), MemoryParams(), "perl", 4000);
}

TEST(Stress, TinyLsq)
{
    LsqParams lp;
    lp.lqEntries = 2;
    lp.sqEntries = 2;
    lp.searchPorts = 1;
    runCore(CoreParams(), lp, MemoryParams(), "vortex", 4000);
}

TEST(Stress, ManyTinySegments)
{
    LsqParams lp;
    lp.numSegments = 8;
    lp.lqEntries = 2;
    lp.sqEntries = 2;
    lp.searchPorts = 1;
    lp.allocPolicy = SegAllocPolicy::NoSelfCircular;
    runCore(CoreParams(), lp, MemoryParams(), "twolf", 4000);
}

TEST(Stress, SegmentedWithLoadBufferAndPair)
{
    LsqParams lp;
    lp.numSegments = 8;
    lp.lqEntries = 4;
    lp.sqEntries = 4;
    lp.searchPorts = 1;
    lp.sqPolicy = SqSearchPolicy::Pair;
    lp.checkViolationsAtCommit = true;
    lp.loadCheck = LoadCheckPolicy::LoadBuffer;
    lp.loadBufferEntries = 1;
    runCore(CoreParams(), lp, MemoryParams(), "perl", 5000);
}

TEST(Stress, ZeroLatePenaltyAndStallContention)
{
    LsqParams lp;
    lp.numSegments = 4;
    lp.lqEntries = 8;
    lp.sqEntries = 8;
    lp.lateWakeupPenalty = 0;
    lp.contentionPolicy = ContentionPolicy::Stall;
    runCore(CoreParams(), lp, MemoryParams(), "ammp", 4000);
}

TEST(Stress, TinyCaches)
{
    MemoryParams mp;
    mp.l1d = CacheParams{"l1d", 1024, 1, 32, 2, 4};
    mp.l1i = CacheParams{"l1i", 1024, 1, 32, 2, 2};
    mp.l2 = CacheParams{"l2", 8192, 2, 64, 12, 4};
    runCore(CoreParams(), LsqParams(), mp, "mcf", 2000);
}

TEST(Stress, OneMshr)
{
    MemoryParams mp;
    mp.l1dMshrs = 1;
    runCore(CoreParams(), LsqParams(), mp, "swim", 3000);
}

TEST(Stress, TinyPredictorTables)
{
    CoreParams cp;
    cp.branchPredictor.tableEntries = 16;
    cp.branchPredictor.bhtEntries = 16;
    cp.branchPredictor.historyBits = 4;
    cp.storeSet.ssitEntries = 16;
    cp.storeSet.lfstEntries = 4;
    cp.storeSet.counterBits = 1;
    cp.storeSet.clearInterval = 512;
    runCore(cp, LsqParams(), MemoryParams(), "gcc", 5000);
}

TEST(Stress, HeavyInvalidationsEverywhere)
{
    CoreParams cp;
    cp.invalidationsPerKCycle = 100.0;
    LsqParams lp;
    lp.numSegments = 4;
    lp.lqEntries = 8;
    lp.sqEntries = 8;
    lp.searchPorts = 1;
    lp.loadCheck = LoadCheckPolicy::LoadBuffer;
    runCore(cp, lp, MemoryParams(), "equake", 4000);
}

// Full cross-product sweep of the paper's design dimensions at tiny
// instruction counts: everything must terminate and commit.
class DesignSweep
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, int, int, bool>>
{
};

TEST_P(DesignSweep, RunsToCompletion)
{
    auto [ports, segments, predictor, loadCheck, combined] = GetParam();
    SimConfig cfg = configs::base("parser");
    cfg.instructions = 2500;
    cfg.warmup = 500;
    cfg.lsq.searchPorts = ports;
    if (segments > 1) {
        cfg = configs::withSegmentation(cfg, segments, 8,
                                        SegAllocPolicy::SelfCircular);
    }
    if (combined)
        cfg = configs::withCombinedQueue(std::move(cfg),
                                         segments > 1 ? 8 : 32);
    switch (predictor) {
      case 1:
        cfg = configs::withPerfectPredictor(cfg);
        break;
      case 2:
        cfg = configs::withPairPredictor(cfg);
        break;
      default:
        break;
    }
    switch (loadCheck) {
      case 1:
        cfg = configs::withLoadBuffer(cfg, 2);
        break;
      case 2:
        cfg = configs::withInOrderLoads(cfg, true);
        break;
      default:
        break;
    }
    SimResult r = Simulator(cfg).run();
    EXPECT_GE(r.committed, 2500u);
    EXPECT_GT(r.ipc(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Everything, DesignSweep,
    ::testing::Combine(::testing::Values(1u, 2u),
                       ::testing::Values(1u, 4u),
                       ::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2),
                       ::testing::Bool()));
