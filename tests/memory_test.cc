/**
 * @file
 * Unit tests for src/memory: set-associative cache and the hierarchy.
 */

#include <gtest/gtest.h>

#include "memory/cache.hh"
#include "memory/memory_system.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

using namespace lsqscale;

namespace {

CacheParams
tiny(unsigned sizeBytes = 1024, unsigned assoc = 2,
     unsigned block = 32, unsigned ports = 2)
{
    CacheParams p;
    p.name = "tiny";
    p.sizeBytes = sizeBytes;
    p.assoc = assoc;
    p.blockBytes = block;
    p.hitLatency = 2;
    p.ports = ports;
    return p;
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(tiny());
    EXPECT_FALSE(c.access(0x1000));
    EXPECT_TRUE(c.access(0x1000));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameBlockHits)
{
    Cache c(tiny());
    c.access(0x1000);
    EXPECT_TRUE(c.access(0x1000 + 31));   // same 32B block
    EXPECT_FALSE(c.access(0x1000 + 32));  // next block
}

TEST(Cache, LruEviction)
{
    // 1KB, 2-way, 32B blocks -> 16 sets. Three blocks mapping to the
    // same set: the least recently used one is evicted.
    Cache c(tiny());
    Addr setStride = 16 * 32;
    c.access(0x0);                 // way 0
    c.access(setStride);           // way 1
    c.access(0x0);                 // touch way 0 (LRU is now way 1)
    c.access(2 * setStride);       // evicts setStride
    EXPECT_TRUE(c.probe(0x0));
    EXPECT_FALSE(c.probe(setStride));
    EXPECT_TRUE(c.probe(2 * setStride));
}

TEST(Cache, ProbeDoesNotAllocate)
{
    Cache c(tiny());
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_FALSE(c.probe(0x4000));
    EXPECT_EQ(c.misses(), 0u);
}

TEST(Cache, DirectMapped)
{
    Cache c(tiny(1024, 1, 32));
    Addr setStride = 32 * 32;
    c.access(0x0);
    c.access(setStride);   // same set, evicts
    EXPECT_FALSE(c.probe(0x0));
}

TEST(Cache, FullyUsedCapacity)
{
    // Fill the whole cache; everything should stay resident.
    Cache c(tiny(1024, 2, 32));
    for (Addr a = 0; a < 1024; a += 32)
        c.access(a);
    for (Addr a = 0; a < 1024; a += 32)
        EXPECT_TRUE(c.probe(a)) << "addr " << a;
}

TEST(Cache, PortsPerCycle)
{
    Cache c(tiny());
    EXPECT_EQ(c.freePorts(10), 2u);
    EXPECT_TRUE(c.tryPort(10));
    EXPECT_EQ(c.freePorts(10), 1u);
    EXPECT_TRUE(c.tryPort(10));
    EXPECT_FALSE(c.tryPort(10));
    // New cycle resets the count.
    EXPECT_TRUE(c.tryPort(11));
}

TEST(Cache, PortCycleRollover)
{
    Cache c(tiny());
    c.tryPort(5);
    c.tryPort(5);
    EXPECT_EQ(c.freePorts(5), 0u);
    EXPECT_EQ(c.freePorts(6), 2u);
    // Going back to an old stamped cycle after moving on: the cache
    // only tracks one cycle at a time (monotonic use in the core).
    EXPECT_TRUE(c.tryPort(7));
}

TEST(Cache, ExportStats)
{
    Cache c(tiny());
    c.access(0x0);
    c.access(0x0);
    StatSet s;
    c.exportStats(s);
    EXPECT_EQ(s.value("tiny.hits"), 1u);
    EXPECT_EQ(s.value("tiny.misses"), 1u);
}

TEST(Cache, RejectsNonPow2Sets)
{
    CacheParams p = tiny();
    p.sizeBytes = 1000;   // not a power-of-two set count
    EXPECT_DEATH({ Cache c(p); }, "sets");
}

// ------------------------------------------------- MemorySystem -------

TEST(MemorySystem, L1HitLatency)
{
    MemorySystem m;
    m.accessData(0, 0x100, false);           // install everywhere
    MemAccessResult r = m.accessData(10, 0x100, false);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.readyCycle, 10u + m.params().l1d.hitLatency);
}

TEST(MemorySystem, L2HitLatency)
{
    MemorySystem m;
    m.accessData(0, 0x100, false);
    // Evict from L1 by filling its set (64K 2-way 32B -> 1024 sets,
    // set stride 32KB).
    m.accessData(1, 0x100 + 32 * 1024, false);
    m.accessData(2, 0x100 + 64 * 1024, false);
    MemAccessResult r = m.accessData(10, 0x100, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
    EXPECT_EQ(r.readyCycle, 10u + m.params().l1d.hitLatency +
                                m.params().l2.hitLatency);
}

TEST(MemorySystem, FullMissLatency)
{
    MemorySystem m;
    MemAccessResult r = m.accessData(5, 0xdeadbeef00ULL, false);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_FALSE(r.l2Hit);
    EXPECT_EQ(r.readyCycle, 5u + m.params().l1d.hitLatency +
                                m.params().l2.hitLatency +
                                m.params().memLatency);
}

TEST(MemorySystem, InstAndDataSeparateL1)
{
    MemorySystem m;
    m.accessData(0, 0x100, false);
    // Same address on the I-side still misses L1I (hits L2).
    MemAccessResult r = m.accessInst(1, 0x100);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_TRUE(r.l2Hit);
}

TEST(MemorySystem, WriteTimingSameAsRead)
{
    MemorySystem m;
    MemAccessResult w = m.accessData(0, 0x200, true);
    MemorySystem m2;
    MemAccessResult r = m2.accessData(0, 0x200, false);
    EXPECT_EQ(w.readyCycle, r.readyCycle);
}

TEST(MemorySystem, ExportStatsNames)
{
    MemorySystem m;
    m.accessData(0, 0x100, false);
    m.accessInst(0, 0x500000);
    StatSet s;
    m.exportStats(s);
    EXPECT_TRUE(s.hasCounter("l1d.misses"));
    EXPECT_TRUE(s.hasCounter("l1i.misses"));
    EXPECT_TRUE(s.hasCounter("l2.misses"));
}

TEST(MemorySystem, Table1Defaults)
{
    MemoryParams p;
    EXPECT_EQ(p.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l1d.assoc, 2u);
    EXPECT_EQ(p.l1d.blockBytes, 32u);
    EXPECT_EQ(p.l1d.hitLatency, 2u);
    EXPECT_EQ(p.l1d.ports, 4u);
    EXPECT_EQ(p.l1i.ports, 2u);
    EXPECT_EQ(p.l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(p.l2.assoc, 8u);
    EXPECT_EQ(p.l2.blockBytes, 64u);
    EXPECT_EQ(p.l2.hitLatency, 12u);
    EXPECT_EQ(p.memLatency, 150u);
}

// Parameterized sweep: hit rate of a working set that fits is 100%
// after the first pass, regardless of geometry.
class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, ResidentWorkingSetAlwaysHits)
{
    auto [assoc, block] = GetParam();
    CacheParams p;
    p.sizeBytes = 8192;
    p.assoc = assoc;
    p.blockBytes = block;
    Cache c(p);
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < 8192; a += block)
            c.access(a);
    // Two full passes after the cold one: all hits.
    EXPECT_EQ(c.misses(), 8192u / block);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(16u, 32u, 64u)));

// ------------------------------------------------------ MSHRs ---------

namespace {

MemoryParams
withMshrs(unsigned n)
{
    MemoryParams p;
    p.l1dMshrs = n;
    return p;
}

} // namespace

TEST(Mshr, UnlimitedByDefault)
{
    MemorySystem m;
    for (int i = 0; i < 100; ++i) {
        MemAccessResult r =
            m.accessData(0, 0x100000 + 4096 * i, false);
        EXPECT_FALSE(r.rejected);
    }
    EXPECT_TRUE(m.canAcceptData(0, 0x9999990));
}

TEST(Mshr, PrimaryMissesLimited)
{
    MemorySystem m(withMshrs(2));
    EXPECT_FALSE(m.accessData(0, 0x10000, false).rejected);
    EXPECT_FALSE(m.accessData(0, 0x20000, false).rejected);
    EXPECT_EQ(m.outstandingFills(0), 2u);
    // A third distinct-block miss in the same window is rejected.
    EXPECT_FALSE(m.canAcceptData(0, 0x30000));
    EXPECT_TRUE(m.accessData(0, 0x30000, false).rejected);
}

TEST(Mshr, SecondaryMissMerges)
{
    MemorySystem m(withMshrs(1));
    MemAccessResult first = m.accessData(0, 0x10000, false);
    EXPECT_FALSE(first.rejected);
    // Same block: merges, no rejection, data with the fill.
    MemAccessResult second = m.accessData(1, 0x10008, false);
    EXPECT_FALSE(second.rejected);
    EXPECT_EQ(second.readyCycle, first.readyCycle);
    EXPECT_EQ(m.outstandingFills(1), 1u);
}

TEST(Mshr, HitsNeverRejected)
{
    MemorySystem m(withMshrs(1));
    m.accessData(0, 0x10000, false);       // fills & occupies the MSHR
    m.accessData(0, 0x20000, false);       // rejected (full)... checked:
    // A resident block hits regardless of MSHR pressure. Install one
    // first, far in the past so its fill completed.
    MemorySystem m2(withMshrs(1));
    m2.accessData(0, 0x10000, false);
    Cycle later = 10000;
    EXPECT_TRUE(m2.canAcceptData(later, 0x10000));
    MemAccessResult r = m2.accessData(later, 0x10000, false);
    EXPECT_FALSE(r.rejected);
    EXPECT_TRUE(r.l1Hit);
}

TEST(Mshr, FreedAfterFillCompletes)
{
    MemorySystem m(withMshrs(1));
    MemAccessResult r = m.accessData(0, 0x10000, false);
    EXPECT_FALSE(m.canAcceptData(1, 0x20000));
    EXPECT_TRUE(m.canAcceptData(r.readyCycle, 0x20000));
    EXPECT_FALSE(m.accessData(r.readyCycle, 0x20000, false).rejected);
}

TEST(Mshr, CoreRunsWithTightMshrs)
{
    // End-to-end: a 2-MSHR machine still makes progress (loads retry)
    // and a memory-bound workload gets slower than with unlimited
    // MSHRs.
    SimConfig base = configs::base("swim");
    base.instructions = 8000;
    base.warmup = 2000;
    SimConfig tight = base;
    tight.memory.l1dMshrs = 2;
    SimResult u = Simulator(base).run();
    SimResult t = Simulator(tight).run();
    EXPECT_GE(t.committed, 8000u);
    EXPECT_GT(t.stats.value("loads.mshr.stall"), 0u);
    EXPECT_LT(t.ipc(), u.ipc());
}
