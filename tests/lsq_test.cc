/**
 * @file
 * Unit tests for src/lsq: port scheduling, segment allocation, the
 * load buffer, and the Lsq model itself (forwarding, both violation
 * schemes, the NILP/LIV protocol, segmented searches, contention).
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "lsq/load_buffer.hh"
#include "lsq/lsq.hh"
#include "lsq/port_schedule.hh"
#include "lsq/segment_allocator.hh"
#include "memory/probe_agent.hh"

using namespace lsqscale;

// ---------------------------------------------------- PortSchedule ----

TEST(PortSchedule, PortsPerSegmentPerCycle)
{
    PortSchedule ps(2, 2);
    EXPECT_EQ(ps.freePorts(0, 5), 2u);
    ps.reserve(0, 5);
    ps.reserve(0, 5);
    EXPECT_EQ(ps.freePorts(0, 5), 0u);
    EXPECT_EQ(ps.freePorts(1, 5), 2u);   // other segment unaffected
    EXPECT_EQ(ps.freePorts(0, 6), 2u);   // next cycle resets
}

TEST(PortSchedule, WalkReservation)
{
    PortSchedule ps(4, 1);
    std::vector<unsigned> walk = {2, 1, 0};
    EXPECT_TRUE(ps.canReserveWalk(walk, 10));
    ps.reserveWalk(walk, 10);
    // Each (segment, cycle) pair along the walk is now booked.
    EXPECT_EQ(ps.freePorts(2, 10), 0u);
    EXPECT_EQ(ps.freePorts(1, 11), 0u);
    EXPECT_EQ(ps.freePorts(0, 12), 0u);
    // Off-diagonal slots are free.
    EXPECT_EQ(ps.freePorts(1, 10), 1u);
    EXPECT_EQ(ps.freePorts(2, 11), 1u);
}

TEST(PortSchedule, CollidingWalksDetected)
{
    PortSchedule ps(4, 1);
    ps.reserveWalk({1, 2}, 10);   // books (1,10), (2,11)
    // A walk arriving at segment 2 in cycle 11 collides.
    EXPECT_FALSE(ps.canReserveWalk({2}, 11));
    EXPECT_FALSE(ps.canReserveWalk({3, 2}, 10));
    EXPECT_TRUE(ps.canReserveWalk({2}, 10));
}

TEST(PortSchedule, OverbookPanics)
{
    PortSchedule ps(1, 1);
    ps.reserve(0, 3);
    EXPECT_DEATH({ ps.reserve(0, 3); }, "overbooked");
}

TEST(PortSchedule, RollingWindowForgetsOldCycles)
{
    PortSchedule ps(1, 1);
    ps.reserve(0, 0);
    EXPECT_EQ(ps.freePorts(0, 16), 1u);   // 16 cycles later, same slot
    ps.reserve(0, 16);
    EXPECT_EQ(ps.freePorts(0, 16), 0u);
}

// ------------------------------------------------ SegmentAllocator ----

TEST(SegmentAllocator, NoSelfCircularWalksLinearly)
{
    SegmentAllocator a(4, 2, SegAllocPolicy::NoSelfCircular);
    EXPECT_EQ(a.allocate(), 0u);
    EXPECT_EQ(a.allocate(), 0u);
    EXPECT_EQ(a.allocate(), 1u);
    EXPECT_EQ(a.allocate(), 1u);
    EXPECT_EQ(a.allocate(), 2u);
}

TEST(SegmentAllocator, NoSelfCircularDriftsAcrossSegments)
{
    // A 1-entry working set still wanders across all segments: the
    // effect behind Figure 11's INT slowdowns.
    SegmentAllocator a(4, 2, SegAllocPolicy::NoSelfCircular);
    std::set<unsigned> segments;
    for (int i = 0; i < 8; ++i) {
        segments.insert(a.allocate());
        a.freeOldest();
    }
    EXPECT_EQ(segments.size(), 4u);
}

TEST(SegmentAllocator, SelfCircularCompactsSmallWorkingSets)
{
    SegmentAllocator a(4, 2, SegAllocPolicy::SelfCircular);
    std::set<unsigned> segments;
    for (int i = 0; i < 16; ++i) {
        segments.insert(a.allocate());
        a.freeOldest();
    }
    EXPECT_EQ(segments.size(), 1u);
}

TEST(SegmentAllocator, SelfCircularSpillsWhenFull)
{
    SegmentAllocator a(4, 2, SegAllocPolicy::SelfCircular);
    EXPECT_EQ(a.allocate(), 0u);
    EXPECT_EQ(a.allocate(), 0u);
    EXPECT_EQ(a.allocate(), 1u);   // segment 0 full -> spill
    EXPECT_EQ(a.occupancy(0), 2u);
    EXPECT_EQ(a.occupancy(1), 1u);
}

TEST(SegmentAllocator, CapacityEnforced)
{
    SegmentAllocator a(2, 2, SegAllocPolicy::SelfCircular);
    for (int i = 0; i < 4; ++i)
        a.allocate();
    EXPECT_FALSE(a.canAllocate());
    EXPECT_DEATH({ a.allocate(); }, "full");
}

TEST(SegmentAllocator, SquashRewindsTail)
{
    SegmentAllocator a(2, 2, SegAllocPolicy::NoSelfCircular);
    a.allocate();                      // seg 0
    a.allocate();                      // seg 0
    EXPECT_EQ(a.allocate(), 1u);       // seg 1
    a.freeYoungest();                  // squash the seg-1 entry
    EXPECT_EQ(a.allocate(), 1u);       // tail rewound: same slot again
    EXPECT_EQ(a.live(), 3u);
}

TEST(SegmentAllocator, FifoFreeKeepsAccounting)
{
    SegmentAllocator a(2, 2, SegAllocPolicy::NoSelfCircular);
    for (int round = 0; round < 10; ++round) {
        a.allocate();
        a.allocate();
        EXPECT_EQ(a.live(), 2u);
        a.freeOldest();
        a.freeOldest();
        EXPECT_EQ(a.live(), 0u);
    }
}

TEST(SegmentAllocator, MixedFreePatterns)
{
    SegmentAllocator a(4, 4, SegAllocPolicy::SelfCircular);
    for (int i = 0; i < 10; ++i)
        a.allocate();
    a.freeYoungest();
    a.freeYoungest();
    a.freeOldest();
    EXPECT_EQ(a.live(), 7u);
    unsigned sum = 0;
    for (unsigned s = 0; s < 4; ++s)
        sum += a.occupancy(s);
    EXPECT_EQ(sum, 7u);
}

// ------------------------------------------------------ LoadBuffer ----

TEST(LoadBuffer, CapacityAndFull)
{
    LoadBuffer lb(2);
    EXPECT_FALSE(lb.full());
    lb.insert(1, 0x100, 10);
    lb.insert(2, 0x200, 11);
    EXPECT_TRUE(lb.full());
    lb.release(1);
    EXPECT_FALSE(lb.full());
}

TEST(LoadBuffer, ZeroEntryAlwaysFull)
{
    LoadBuffer lb(0);
    EXPECT_TRUE(lb.full());
}

TEST(LoadBuffer, UnboundedNeverFull)
{
    LoadBuffer lb(0, true);
    for (SeqNum i = 0; i < 100; ++i)
        lb.insert(i, 0x100, i);
    EXPECT_FALSE(lb.full());
    EXPECT_EQ(lb.size(), 100u);
}

TEST(LoadBuffer, FindViolationRequiresYoungerEarlier)
{
    LoadBuffer lb(4);
    lb.insert(20, 0x100, 50);   // younger, executed at 50
    // Search on behalf of load 10 that executed at 60: load 20 is
    // younger and executed earlier -> violation.
    EXPECT_EQ(lb.findViolation(10, 0x100, 60), 20u);
    // Different address: no violation.
    EXPECT_EQ(lb.findViolation(10, 0x200, 60), kNoSeq);
    // Searcher executed earlier than the buffered load: no violation.
    EXPECT_EQ(lb.findViolation(10, 0x100, 40), kNoSeq);
    // Buffered load is older than the searcher: not its problem.
    EXPECT_EQ(lb.findViolation(30, 0x100, 60), kNoSeq);
}

TEST(LoadBuffer, SameCycleIsNotAViolation)
{
    LoadBuffer lb(4);
    lb.insert(20, 0x100, 50);
    EXPECT_EQ(lb.findViolation(10, 0x100, 50), kNoSeq);
}

TEST(LoadBuffer, OldestViolatorReturned)
{
    LoadBuffer lb(4);
    lb.insert(30, 0x100, 50);
    lb.insert(20, 0x100, 51);
    EXPECT_EQ(lb.findViolation(10, 0x100, 60), 20u);
}

TEST(LoadBuffer, SquashRemovesYoung)
{
    LoadBuffer lb(4);
    lb.insert(10, 0x100, 1);
    lb.insert(20, 0x200, 2);
    lb.insert(30, 0x300, 3);
    lb.squashFrom(20);
    EXPECT_EQ(lb.size(), 1u);
    EXPECT_EQ(lb.findViolation(5, 0x100, 9), 10u);
    EXPECT_EQ(lb.findViolation(5, 0x200, 9), kNoSeq);
}

TEST(LoadBuffer, ReleaseUnknownSeqIsNoop)
{
    LoadBuffer lb(2);
    lb.insert(1, 0x100, 1);
    lb.release(99);
    EXPECT_EQ(lb.size(), 1u);
}

// -------------------------------------------------------- Lsq ---------

namespace {

LsqParams
flat(unsigned ports = 2, unsigned entries = 32)
{
    LsqParams p;
    p.lqEntries = entries;
    p.sqEntries = entries;
    p.searchPorts = ports;
    return p;
}

struct LsqFixture
{
    StatSet stats;
    Lsq lsq;

    explicit LsqFixture(const LsqParams &p) : lsq(p, stats) {}
};

} // namespace

TEST(Lsq, AllocationCapacity)
{
    LsqFixture f(flat(2, 4));
    for (SeqNum i = 0; i < 4; ++i) {
        EXPECT_TRUE(f.lsq.canAllocateLoad());
        f.lsq.allocateLoad(i, 0x1000 + 4 * i);
    }
    EXPECT_FALSE(f.lsq.canAllocateLoad());
    EXPECT_TRUE(f.lsq.canAllocateStore());   // separate queues
    EXPECT_EQ(f.lsq.lqLive(), 4u);
}

TEST(Lsq, ProgramOrderAllocationEnforced)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(5, 0x1000);
    EXPECT_DEATH({ f.lsq.allocateLoad(3, 0x1004); }, "program order");
}

TEST(Lsq, ForwardingFromYoungestOlderStore)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateStore(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    f.lsq.storeAddrReady(1, 0xA0, 0);
    f.lsq.storeAddrReady(2, 0xA0, 1);
    LoadIssueOutcome out = f.lsq.issueLoad(3, 0xA0, 2, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    EXPECT_TRUE(out.forwarded);
    EXPECT_EQ(out.forwardedFrom, 2u);   // the *youngest* older store
    EXPECT_EQ(out.forwardedFromPc, 0x1004u);
}

TEST(Lsq, NoForwardingFromYoungerStore)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateStore(2, 0x1004);
    f.lsq.storeAddrReady(2, 0xB0, 0);
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0xB0, 1, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    EXPECT_FALSE(out.forwarded);
}

TEST(Lsq, NoForwardingFromInvalidAddressStore)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);   // never executes
    f.lsq.allocateLoad(2, 0x1004);
    LoadIssueOutcome out = f.lsq.issueLoad(2, 0xC0, 1, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    EXPECT_FALSE(out.forwarded);
}

TEST(Lsq, OracleOlderMatchingStore)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    EXPECT_FALSE(f.lsq.olderMatchingStore(2, 0xD0));
    f.lsq.storeAddrReady(1, 0xD0, 0);
    EXPECT_TRUE(f.lsq.olderMatchingStore(2, 0xD0));
    EXPECT_FALSE(f.lsq.olderMatchingStore(1, 0xD0));   // own seq older
}

TEST(Lsq, SkippedSearchDoesNotConsumePort)
{
    LsqFixture f(flat(1));
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    // Both loads issue in the same cycle: the first consumes the only
    // SQ port; the second one searches nothing so it needs only the
    // LQ port... which the first also used. Use LoadBuffer mode to
    // isolate the SQ port.
    LsqParams p = flat(1);
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    StatSet stats2;
    Lsq lsq2(p, stats2);
    lsq2.allocateLoad(1, 0x1000);
    lsq2.allocateLoad(2, 0x1004);
    EXPECT_EQ(lsq2.issueLoad(1, 0xE0, 0, true).status,
              LoadIssueStatus::Accepted);
    // Port gone; a searching load is rejected...
    lsq2.allocateLoad(3, 0x1008);
    EXPECT_EQ(lsq2.issueLoad(2, 0xE8, 0, true).status,
              LoadIssueStatus::NoSqPort);
    // ...but a non-searching load sails through.
    EXPECT_EQ(lsq2.issueLoad(2, 0xE8, 0, false).status,
              LoadIssueStatus::Accepted);
}

TEST(Lsq, SqPortLimitPerCycle)
{
    LsqParams p = flat(2);
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    for (SeqNum i = 1; i <= 3; ++i)
        f.lsq.allocateLoad(i, 0x1000 + 4 * i);
    EXPECT_EQ(f.lsq.issueLoad(1, 0x10, 7, true).status,
              LoadIssueStatus::Accepted);
    EXPECT_EQ(f.lsq.issueLoad(2, 0x18, 7, true).status,
              LoadIssueStatus::Accepted);
    EXPECT_EQ(f.lsq.issueLoad(3, 0x20, 7, true).status,
              LoadIssueStatus::NoSqPort);
    // Next cycle is fine.
    EXPECT_EQ(f.lsq.issueLoad(3, 0x20, 8, true).status,
              LoadIssueStatus::Accepted);
}

TEST(Lsq, LqPortsConsumedByStoreSearches)
{
    LsqFixture f(flat(1));
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateStore(2, 0x1004);
    EXPECT_TRUE(f.lsq.storeAddrReady(1, 0x30, 4).accepted);
    // Same cycle: LQ port exhausted.
    EXPECT_FALSE(f.lsq.storeAddrReady(2, 0x38, 4).accepted);
    EXPECT_TRUE(f.lsq.storeAddrReady(2, 0x38, 5).accepted);
}

// --------------------------------- store-load violations (execute) ----

TEST(Lsq, ExecTimeViolationDetected)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    // Premature load executes before the store's address is known.
    f.lsq.issueLoad(2, 0xF0, 0, true);
    StoreSearchOutcome out = f.lsq.storeAddrReady(1, 0xF0, 3);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, 2u);
    EXPECT_EQ(out.violationLoadPc, 0x1004u);
}

TEST(Lsq, NoViolationWhenLoadForwardedFromNewerStore)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateStore(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    f.lsq.storeAddrReady(2, 0xF8, 0);
    f.lsq.issueLoad(3, 0xF8, 1, true);   // forwards from store 2
    StoreSearchOutcome out = f.lsq.storeAddrReady(1, 0xF8, 5);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, kNoSeq);
}

TEST(Lsq, OldestViolatorReported)
{
    LsqFixture f(flat(4));
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    f.lsq.issueLoad(2, 0xF0, 0, true);
    f.lsq.issueLoad(3, 0xF0, 1, true);
    StoreSearchOutcome out = f.lsq.storeAddrReady(1, 0xF0, 5);
    EXPECT_EQ(out.violationLoad, 2u);
}

TEST(Lsq, UnexecutedLoadIsNotPremature)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    StoreSearchOutcome out = f.lsq.storeAddrReady(1, 0xF0, 3);
    EXPECT_EQ(out.violationLoad, kNoSeq);
}

// ----------------------------------- store-load violations (commit) ---

TEST(Lsq, CommitTimeViolationScheme)
{
    LsqParams p = flat();
    p.checkViolationsAtCommit = true;
    LsqFixture f(p);
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(2, 0xF0, 0, false);   // predicted independent
    // Execute-time search is skipped in this scheme.
    StoreSearchOutcome exec = f.lsq.storeAddrReady(1, 0xF0, 3);
    EXPECT_TRUE(exec.accepted);
    EXPECT_EQ(exec.violationLoad, kNoSeq);
    // Detection happens at commit.
    StoreSearchOutcome commit = f.lsq.commitStore(1, 10);
    ASSERT_TRUE(commit.accepted);
    EXPECT_EQ(commit.violationLoad, 2u);
    EXPECT_EQ(f.lsq.sqLive(), 0u);
}

TEST(Lsq, CommitSearchDelayedWithoutPort)
{
    LsqParams p = flat(1);
    p.checkViolationsAtCommit = true;
    LsqFixture f(p);
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateStore(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    f.lsq.storeAddrReady(1, 0x40, 0);
    f.lsq.storeAddrReady(2, 0x48, 1);
    // Consume the only LQ port at cycle 5 with a conventional-check
    // load... LoadCheck is SearchLoadQueue by default.
    f.lsq.issueLoad(3, 0x50, 5, false);
    StoreSearchOutcome out = f.lsq.commitStore(1, 5);
    EXPECT_FALSE(out.accepted);   // delayed
    EXPECT_EQ(f.lsq.sqLive(), 2u);
    EXPECT_TRUE(f.lsq.commitStore(1, 6).accepted);
}

TEST(Lsq, CommitOutOfOrderPanics)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateStore(2, 0x1004);
    f.lsq.storeAddrReady(1, 0x10, 0);
    f.lsq.storeAddrReady(2, 0x18, 0);
    EXPECT_DEATH({ f.lsq.commitStore(2, 3); }, "SQ head");
}

// ------------------------------------------- load-load ordering -------

TEST(Lsq, ConventionalLoadLoadViolation)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    // Younger load 2 executes first (out of order), same address.
    f.lsq.issueLoad(2, 0x60, 0, true);
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0x60, 3, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    ASSERT_EQ(out.llViolations.size(), 1u);
    EXPECT_EQ(out.llViolations[0], 2u);
}

TEST(Lsq, NoViolationDifferentAddress)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(2, 0x60, 0, true);
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0x68, 3, true);
    EXPECT_TRUE(out.llViolations.empty());
}

TEST(Lsq, NoViolationWhenOlderIssuesFirst)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(1, 0x60, 0, true);
    LoadIssueOutcome out = f.lsq.issueLoad(2, 0x60, 3, true);
    EXPECT_TRUE(out.llViolations.empty());
}

TEST(Lsq, LoadBufferDetectsViolationAtInOrderSearch)
{
    LsqParams p = flat();
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    p.loadBufferEntries = 2;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    // Load 2 issues out of order -> enters the load buffer.
    EXPECT_EQ(f.lsq.issueLoad(2, 0x60, 0, true).status,
              LoadIssueStatus::Accepted);
    EXPECT_EQ(f.lsq.loadBuffer().size(), 1u);
    // Load 1 (the oldest non-issued) issues in order and searches the
    // buffer immediately.
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0x60, 3, true);
    ASSERT_EQ(out.llViolations.size(), 1u);
    EXPECT_EQ(out.llViolations[0], 2u);
    // NILP passed both: buffer drains.
    EXPECT_EQ(f.lsq.loadBuffer().size(), 0u);
}

TEST(Lsq, LoadBufferDeferredSearchAtRelease)
{
    // Section 2.2.1's release-time search: X (ooo) vs younger R that
    // executed before X.
    LsqParams p = flat();
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    p.loadBufferEntries = 4;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);   // stays non-issued for a while
    f.lsq.allocateLoad(2, 0x1004);   // X
    f.lsq.allocateLoad(3, 0x1008);   // R
    f.lsq.issueLoad(3, 0x70, 0, true);   // R executes first (ooo)
    f.lsq.issueLoad(2, 0x70, 2, true);   // X executes later (ooo)
    // No violation detected yet: X's search is deferred to release.
    // When load 1 issues, the NILP passes X and R; X's release search
    // finds R (younger, executed earlier, same address).
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0x90, 5, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    ASSERT_EQ(out.llViolations.size(), 1u);
    EXPECT_EQ(out.llViolations[0], 3u);
}

TEST(Lsq, LoadBufferFullStallsOooLoads)
{
    LsqParams p = flat();
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    p.loadBufferEntries = 1;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    EXPECT_EQ(f.lsq.issueLoad(2, 0x60, 0, true).status,
              LoadIssueStatus::Accepted);    // fills the 1-entry LB
    EXPECT_EQ(f.lsq.issueLoad(3, 0x68, 1, true).status,
              LoadIssueStatus::LoadBufferFull);
    // The oldest non-issued load elides the buffer entirely.
    EXPECT_EQ(f.lsq.issueLoad(1, 0x70, 2, true).status,
              LoadIssueStatus::Accepted);
    // NILP advanced past everything: load 3 can now issue.
    EXPECT_EQ(f.lsq.issueLoad(3, 0x68, 3, true).status,
              LoadIssueStatus::Accepted);
}

TEST(Lsq, InOrderPolicyForcesProgramOrder)
{
    LsqParams p = flat();
    p.loadCheck = LoadCheckPolicy::InOrder;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    EXPECT_EQ(f.lsq.issueLoad(2, 0x60, 0, true).status,
              LoadIssueStatus::InOrderStall);
    EXPECT_EQ(f.lsq.issueLoad(1, 0x58, 0, true).status,
              LoadIssueStatus::Accepted);
    EXPECT_EQ(f.lsq.issueLoad(2, 0x60, 1, true).status,
              LoadIssueStatus::Accepted);
}

TEST(Lsq, InOrderAlwaysSearchStillSearchesLq)
{
    LsqParams p = flat();
    p.loadCheck = LoadCheckPolicy::InOrderAlwaysSearch;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.issueLoad(1, 0x58, 0, true);
    EXPECT_EQ(f.stats.value("lq.searches.byload"), 1u);

    LsqParams q = flat();
    q.loadCheck = LoadCheckPolicy::InOrder;
    LsqFixture g(q);
    g.lsq.allocateLoad(1, 0x1000);
    g.lsq.issueLoad(1, 0x58, 0, true);
    EXPECT_EQ(g.stats.value("lq.searches.byload"), 0u);
}

// ------------------------------------------------------- squash -------

TEST(Lsq, SquashRemovesYoungEntries)
{
    LsqFixture f(flat());
    for (SeqNum i = 1; i <= 6; ++i) {
        if (i % 2)
            f.lsq.allocateLoad(i, 0x1000 + 4 * i);
        else
            f.lsq.allocateStore(i, 0x1000 + 4 * i);
    }
    f.lsq.squashFrom(4);
    EXPECT_EQ(f.lsq.lqLive(), 2u);   // loads 1, 3
    EXPECT_EQ(f.lsq.sqLive(), 1u);   // store 2
    // Reallocation after squash works.
    f.lsq.allocateStore(4, 0x2000);
    f.lsq.allocateLoad(5, 0x2004);
    EXPECT_EQ(f.lsq.sqLive(), 2u);
}

TEST(Lsq, SquashClearsLoadBuffer)
{
    LsqParams p = flat();
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(2, 0x60, 0, true);
    EXPECT_EQ(f.lsq.loadBuffer().size(), 1u);
    f.lsq.squashFrom(2);
    EXPECT_EQ(f.lsq.loadBuffer().size(), 0u);
}

TEST(Lsq, OooAccountingSurvivesSquash)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(2, 0x60, 0, true);   // ooo
    f.lsq.squashFrom(2);
    f.lsq.sampleOccupancy();
    // After the squash no ooo load is in flight.
    EXPECT_DOUBLE_EQ(f.stats.getHistogram("ooo.inflight").mean(), 0.0);
}

// ------------------------------------------------- segmentation -------

namespace {

LsqParams
segmented(SegAllocPolicy policy, unsigned segments = 4,
          unsigned perSegment = 4, unsigned ports = 2)
{
    LsqParams p;
    p.numSegments = segments;
    p.lqEntries = perSegment;
    p.sqEntries = perSegment;
    p.searchPorts = ports;
    p.allocPolicy = policy;
    return p;
}

} // namespace

TEST(LsqSegmented, CapacityIsSegmentsTimesEntries)
{
    LsqFixture f(segmented(SegAllocPolicy::SelfCircular));
    for (SeqNum i = 0; i < 16; ++i)
        f.lsq.allocateLoad(i, 0x1000 + 4 * i);
    EXPECT_FALSE(f.lsq.canAllocateLoad());
}

TEST(LsqSegmented, MultiSegmentForwardingSearch)
{
    // Fill several SQ segments with stores, then search from a young
    // load toward the head: the visit count reflects the span.
    LsqFixture f(segmented(SegAllocPolicy::NoSelfCircular));
    SeqNum seq = 0;
    for (; seq < 12; ++seq)
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
    for (SeqNum s = 0; s < 12; ++s)
        f.lsq.storeAddrReady(s, 0x5000 + 16 * s, s);
    f.lsq.allocateLoad(seq, 0x2000);
    // The match is the oldest store (segment 0), 3 segments away.
    LoadIssueOutcome out = f.lsq.issueLoad(seq, 0x5000, 20, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    EXPECT_TRUE(out.forwarded);
    EXPECT_EQ(out.forwardedFrom, 0u);
    EXPECT_EQ(out.sqSegmentsVisited, 3u);
    EXPECT_EQ(out.searchDoneCycle, 23u);
    EXPECT_FALSE(out.constantLatency);
}

TEST(LsqSegmented, SearchStopsAtMatchSegment)
{
    LsqFixture f(segmented(SegAllocPolicy::NoSelfCircular));
    SeqNum seq = 0;
    for (; seq < 12; ++seq)
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
    for (SeqNum s = 0; s < 12; ++s)
        f.lsq.storeAddrReady(s, 0x5000 + 16 * s, s);
    f.lsq.allocateLoad(seq, 0x2000);
    // Match in the youngest (third) segment: one visit.
    LoadIssueOutcome out =
        f.lsq.issueLoad(seq, 0x5000 + 16 * 11, 20, true);
    EXPECT_TRUE(out.forwarded);
    EXPECT_EQ(out.sqSegmentsVisited, 1u);
}

TEST(LsqSegmented, HeadSegmentLoadsHaveConstantLatency)
{
    LsqFixture f(segmented(SegAllocPolicy::SelfCircular));
    // Few stores, all in one segment: every load's search is confined
    // to the head segment -> early wakeup is preserved.
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.storeAddrReady(0, 0x5000, 0);
    f.lsq.allocateLoad(1, 0x2000);
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0x6000, 2, true);
    EXPECT_TRUE(out.constantLatency);
}

TEST(LsqSegmented, PipelinedSearchesContend)
{
    // A 1-port segmented queue: a walk booked through segment 0 at
    // cycle T+1 collides with a new search initiated there.
    LsqFixture f(segmented(SegAllocPolicy::NoSelfCircular, 4, 4, 1));
    SeqNum seq = 0;
    for (; seq < 8; ++seq)
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
    for (SeqNum s = 0; s < 8; ++s)
        f.lsq.storeAddrReady(s, 0x5000 + 16 * s, s);
    // Load A searches from segment 1 toward segment 0: books
    // (seg1, 20) and (seg0, 21).
    f.lsq.allocateLoad(seq, 0x2000);
    LoadIssueOutcome a = f.lsq.issueLoad(seq, 0x5000, 20, true);
    ASSERT_EQ(a.status, LoadIssueStatus::Accepted);
    EXPECT_EQ(a.sqSegmentsVisited, 2u);
    ++seq;
    // Load B at cycle 21 wants the same walk starting at segment 1:
    // (seg1,21) free, (seg0,22) free -> fine. But a search needing
    // (seg0, 21) directly conflicts:
    f.lsq.allocateLoad(seq, 0x2004);
    LoadIssueOutcome b = f.lsq.issueLoad(seq, 0x5000 + 16, 21, true);
    // Its walk starts at seg1 cycle21... books fine; to force the
    // collision, issue another search the same cycle.
    ASSERT_EQ(b.status, LoadIssueStatus::Accepted);
    ++seq;
    f.lsq.allocateLoad(seq, 0x2008);
    LoadIssueOutcome c = f.lsq.issueLoad(seq, 0x5000, 21, true);
    EXPECT_NE(c.status, LoadIssueStatus::Accepted);
}

TEST(LsqSegmented, ContentionPolicyStallReportsPortBusy)
{
    LsqParams p = segmented(SegAllocPolicy::NoSelfCircular, 4, 4, 1);
    p.contentionPolicy = ContentionPolicy::Stall;
    LsqFixture f(p);
    SeqNum seq = 0;
    for (; seq < 8; ++seq)
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
    for (SeqNum s = 0; s < 8; ++s)
        f.lsq.storeAddrReady(s, 0x5000 + 16 * s, s);
    f.lsq.allocateLoad(seq, 0x2000);
    f.lsq.issueLoad(seq, 0x5000, 20, true);
    ++seq;
    f.lsq.allocateLoad(seq, 0x2004);
    f.lsq.issueLoad(seq, 0x5000 + 16, 21, true);
    ++seq;
    f.lsq.allocateLoad(seq, 0x2008);
    LoadIssueOutcome c = f.lsq.issueLoad(seq, 0x5000, 21, true);
    EXPECT_TRUE(c.status == LoadIssueStatus::NoSqPort ||
                c.status == LoadIssueStatus::NoLqPort);
}

TEST(LsqSegmented, SegmentDistributionHistogram)
{
    LsqFixture f(segmented(SegAllocPolicy::NoSelfCircular));
    SeqNum seq = 0;
    for (; seq < 12; ++seq)
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
    for (SeqNum s = 0; s < 12; ++s)
        f.lsq.storeAddrReady(s, 0x5000 + 16 * s, s);
    f.lsq.allocateLoad(seq, 0x2000);
    f.lsq.issueLoad(seq, 0x5000, 20, true);   // 3 segments
    const Histogram &h = f.stats.getHistogram("sq.search.segments");
    EXPECT_EQ(h.samples(), 1u);
    EXPECT_EQ(h.bucket(3), 1u);
}

// Property sweep over configurations: issue/commit round trips keep
// occupancy consistent for every (policy, segments, ports) combo.
class LsqConfigSweep
    : public ::testing::TestWithParam<
          std::tuple<SegAllocPolicy, unsigned, unsigned>>
{
};

TEST_P(LsqConfigSweep, RoundTripConsistency)
{
    auto [policy, segments, ports] = GetParam();
    LsqParams p;
    p.numSegments = segments;
    p.lqEntries = 8;
    p.sqEntries = 8;
    p.searchPorts = ports;
    p.allocPolicy = policy;
    StatSet stats;
    Lsq lsq(p, stats);

    Cycle now = 0;
    SeqNum seq = 0;
    for (int round = 0; round < 20; ++round) {
        std::vector<SeqNum> loads, stores;
        for (int i = 0; i < 6; ++i) {
            if (i % 3 == 2) {
                lsq.allocateStore(seq, 0x1000 + 4 * seq);
                stores.push_back(seq);
            } else {
                lsq.allocateLoad(seq, 0x1000 + 4 * seq);
                loads.push_back(seq);
            }
            ++seq;
        }
        for (SeqNum s : stores) {
            while (!lsq.storeAddrReady(s, 0x9000 + 8 * (s % 64), now)
                        .accepted)
                ++now;
            ++now;
        }
        for (SeqNum l : loads) {
            LoadIssueOutcome out;
            do {
                out = lsq.issueLoad(l, 0x9000 + 8 * (l % 64), now,
                                    true);
                ++now;
            } while (out.status != LoadIssueStatus::Accepted);
        }
        // Commit in program order.
        std::size_t li = 0, si = 0;
        for (int i = 0; i < 6; ++i) {
            if (i % 3 == 2) {
                while (!lsq.commitStore(stores[si], now).accepted)
                    ++now;
                ++si;
                ++now;
            } else {
                lsq.commitLoad(loads[li++]);
            }
        }
        ASSERT_EQ(lsq.lqLive(), 0u);
        ASSERT_EQ(lsq.sqLive(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LsqConfigSweep,
    ::testing::Combine(::testing::Values(SegAllocPolicy::NoSelfCircular,
                                         SegAllocPolicy::SelfCircular),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 4u)));

// --------------------------------------- invalidation extension -------

TEST(LsqInvalidate, MatchesOutstandingLoad)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.issueLoad(1, 0xAA0, 0, true);
    StoreSearchOutcome out = f.lsq.invalidate(0xAA0, 3);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, 1u);
    EXPECT_EQ(f.stats.value("lq.searches.invalidation"), 1u);
}

TEST(LsqInvalidate, MissesUnexecutedAndOtherAddresses)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(2, 0xBB0, 0, true);
    EXPECT_EQ(f.lsq.invalidate(0xCC0, 3).violationLoad, kNoSeq);
    // Load 1 never executed: not outstanding.
    EXPECT_EQ(f.lsq.invalidate(0x1000, 4).violationLoad, kNoSeq);
}

TEST(LsqInvalidate, ConsumesLqPort)
{
    LsqFixture f(flat(1));
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.issueLoad(1, 0xAA0, 0, true);   // uses the LQ port at 0
    EXPECT_FALSE(f.lsq.invalidate(0xAA0, 0).accepted);
    EXPECT_TRUE(f.lsq.invalidate(0xAA0, 1).accepted);
}

TEST(LsqInvalidate, OldestOutstandingLoadSquashed)
{
    LsqFixture f(flat(4));
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.issueLoad(1, 0xDD0, 0, true);
    f.lsq.issueLoad(2, 0xDD0, 1, true);
    EXPECT_EQ(f.lsq.invalidate(0xDD0, 5).violationLoad, 1u);
}

// Coherence probes under the load-buffer snoop policies: the probe
// searches only the tiny out-of-order-issued-loads CAM and never
// takes an LQ port (the point of the paper's scheme 2).

TEST(LoadBuffer, FindMatchReturnsOldestResident)
{
    LoadBuffer lb(4);
    lb.insert(7, 0xAA0, 10);
    lb.insert(5, 0xAA0, 12);
    lb.insert(6, 0xBB0, 11);
    EXPECT_EQ(lb.findMatch(0xAA0), 5u);
    EXPECT_EQ(lb.findMatch(0xBB0), 6u);
    EXPECT_EQ(lb.findMatch(0xCC0), kNoSeq);
    lb.release(5);                        // NILP passed it: replaced
    EXPECT_EQ(lb.findMatch(0xAA0), 7u);
    lb.squashFrom(6);
    EXPECT_EQ(lb.findMatch(0xAA0), kNoSeq);
}

namespace {

LsqParams
lbPolicy(unsigned ports = 1, unsigned lbEntries = 4)
{
    LsqParams p = flat(ports);
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    p.loadBufferEntries = lbEntries;
    return p;
}

} // namespace

TEST(LsqInvalidate, LoadBufferSnoopSquashesVulnerableLoad)
{
    LsqFixture f(lbPolicy());
    f.lsq.allocateLoad(1, 0x1000);        // never issues: load 2 is OOO
    f.lsq.allocateLoad(2, 0x1004);
    ASSERT_EQ(f.lsq.issueLoad(2, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    StoreSearchOutcome out = f.lsq.invalidate(0xAA0, 3);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, 2u);
    EXPECT_EQ(out.violationLoadPc, 0x1004u);
    // The snoop hits the load buffer, not the LQ CAM.
    EXPECT_EQ(f.stats.value("lb.probes"), 1u);
    EXPECT_EQ(f.stats.value("lq.searches.invalidation"), 0u);
}

TEST(LsqInvalidate, LoadBufferSnoopIsPortFree)
{
    // One search port, and it is busy: probes are still accepted in
    // the same cycle, any number of them (no LQ walk reservation).
    LsqFixture f(lbPolicy(1));
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    ASSERT_EQ(f.lsq.issueLoad(2, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(f.lsq.invalidate(0xDD0, 0).accepted);
}

TEST(LsqInvalidate, LoadBufferSnoopIgnoresInOrderIssuedLoad)
{
    // A load that issued in program order never enters the buffer, so
    // a probe to its line reports no victim: the older-load horizon
    // it could violate does not exist.
    LsqFixture f(lbPolicy());
    f.lsq.allocateLoad(1, 0x1000);
    ASSERT_EQ(f.lsq.issueLoad(1, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    StoreSearchOutcome out = f.lsq.invalidate(0xAA0, 2);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, kNoSeq);
}

TEST(LsqInvalidate, LoadBufferSnoopMissesReleasedLoad)
{
    // Once the NILP passes an out-of-order-issued load (every older
    // load has issued), it leaves the buffer and probes no longer
    // squash it.
    LsqFixture f(lbPolicy(2));
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    ASSERT_EQ(f.lsq.issueLoad(2, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    EXPECT_EQ(f.lsq.invalidate(0xAA0, 1).violationLoad, 2u);
    ASSERT_EQ(f.lsq.issueLoad(1, 0xBB0, 2, false).status,
              LoadIssueStatus::Accepted);   // NILP passes load 2
    EXPECT_EQ(f.lsq.invalidate(0xAA0, 3).violationLoad, kNoSeq);
}

TEST(LsqInvalidate, LoadBufferSnoopPicksOldestVulnerable)
{
    LsqFixture f(lbPolicy(2));
    f.lsq.allocateLoad(1, 0x1000);        // never issues
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    ASSERT_EQ(f.lsq.issueLoad(3, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    ASSERT_EQ(f.lsq.issueLoad(2, 0xAA0, 1, false).status,
              LoadIssueStatus::Accepted);
    EXPECT_EQ(f.lsq.invalidate(0xAA0, 2).violationLoad, 2u);
}

TEST(LsqInvalidate, SquashOnProbeEmptiesBuffer)
{
    // The squash a probe demands also removes the victim (and all
    // younger loads) from the buffer: a replayed probe finds nothing.
    LsqFixture f(lbPolicy());
    f.lsq.allocateLoad(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.allocateLoad(3, 0x1008);
    ASSERT_EQ(f.lsq.issueLoad(2, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    ASSERT_EQ(f.lsq.issueLoad(3, 0xAA0, 1, false).status,
              LoadIssueStatus::Accepted);
    SeqNum victim = f.lsq.invalidate(0xAA0, 2).violationLoad;
    ASSERT_EQ(victim, 2u);
    f.lsq.squashFrom(victim);
    EXPECT_EQ(f.lsq.invalidate(0xAA0, 3).violationLoad, kNoSeq);
}

TEST(LsqInvalidate, InOrderPolicySnoopIsEmptyNoop)
{
    // The "0-entry load buffer" baseline: in-order issue keeps the
    // buffer empty, so every probe is accepted and nothing is ever
    // squashed — the scheme's correctness argument in miniature.
    LsqParams p = flat(1);
    p.loadCheck = LoadCheckPolicy::InOrder;
    p.loadBufferEntries = 0;
    LsqFixture f(p);
    f.lsq.allocateLoad(1, 0x1000);
    ASSERT_EQ(f.lsq.issueLoad(1, 0xAA0, 0, false).status,
              LoadIssueStatus::Accepted);
    StoreSearchOutcome out = f.lsq.invalidate(0xAA0, 1);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, kNoSeq);
}

// ------------------------------------------------- ProbeAgent ---------

TEST(ProbeAgent, ScriptedWritersFireOnSchedule)
{
    ProbeAgentParams p;
    p.enabled = true;
    p.writers.push_back(ProbeWriter{0xAA0, 10, 0, 0});    // one-shot
    p.writers.push_back(ProbeWriter{0xBB0, 12, 5, 2});    // two writes
    ProbeAgent agent(p);
    Addr a = 0;
    for (Cycle c = 0; c < 10; ++c)
        EXPECT_FALSE(agent.due(c, a)) << c;
    ASSERT_TRUE(agent.due(10, a));
    EXPECT_EQ(a, 0xAA0u);
    agent.delivered(a, 10, kNoSeq);
    EXPECT_FALSE(agent.due(11, a));
    ASSERT_TRUE(agent.due(12, a));
    EXPECT_EQ(a, 0xBB0u);
    agent.delivered(a, 12, kNoSeq);
    ASSERT_TRUE(agent.due(17, a));
    agent.delivered(a, 17, kNoSeq);
    for (Cycle c = 18; c < 40; ++c)
        EXPECT_FALSE(agent.due(c, a)) << c;   // count exhausted
    EXPECT_EQ(agent.deliveredCount(), 3u);
}

TEST(ProbeAgent, RejectedProbeRetriesInFifoOrder)
{
    ProbeAgentParams p;
    p.enabled = true;
    p.writers.push_back(ProbeWriter{0xAA0, 5, 0, 0});
    p.writers.push_back(ProbeWriter{0xBB0, 6, 0, 0});
    ProbeAgent agent(p);
    Addr a = 0;
    ASSERT_TRUE(agent.due(5, a));
    EXPECT_EQ(a, 0xAA0u);
    agent.rejected();                     // no LQ port this cycle
    ASSERT_TRUE(agent.due(6, a));
    EXPECT_EQ(a, 0xAA0u);                 // still first in line
    agent.delivered(a, 6, kNoSeq);
    ASSERT_TRUE(agent.due(7, a));
    EXPECT_EQ(a, 0xBB0u);
    agent.delivered(a, 7, kNoSeq);
    EXPECT_EQ(agent.rejectedCount(), 1u);
    EXPECT_EQ(agent.pendingProbes(), 0u);
}

TEST(ProbeAgent, WatchSetOverflowEvictsOldest)
{
    ProbeAgentParams p;
    p.enabled = true;
    p.watchCapacity = 2;
    ProbeAgent agent(p);
    agent.observeLoadCommit(1, 0x100, 0xAA0, 5, kNoSeq, 6);
    agent.observeLoadCommit(2, 0x104, 0xBB0, 6, kNoSeq, 7);
    agent.observeLoadCommit(3, 0x108, 0xBB0, 7, kNoSeq, 8);  // dup
    EXPECT_EQ(agent.watchSize(), 2u);
    EXPECT_EQ(agent.watchEvictions(), 0u);
    agent.observeStoreCommit(4, 0x10c, 0xCC0, 9);            // evicts AA0
    EXPECT_EQ(agent.watchSize(), 2u);
    EXPECT_EQ(agent.watchEvictions(), 1u);
}

TEST(ProbeAgent, TriggerChasesStoreCommit)
{
    ProbeAgentParams p;
    p.enabled = true;
    p.triggers.push_back(ProbeTrigger{0xBB0, 0xAA0, 3});
    ProbeAgent agent(p);
    Addr a = 0;
    EXPECT_FALSE(agent.due(4, a));
    agent.observeStoreCommit(1, 0x100, 0xBB0, 5);
    EXPECT_FALSE(agent.due(6, a));        // fires at 5 + 3
    EXPECT_FALSE(agent.due(7, a));
    ASSERT_TRUE(agent.due(8, a));
    EXPECT_EQ(a, 0xAA0u);
    agent.delivered(a, 8, kNoSeq);
}

TEST(ProbeAgent, ValueIndicesCountPerAddress)
{
    ProbeAgentParams p;
    p.enabled = true;
    p.writers.push_back(ProbeWriter{0xAA0, 2, 4, 2});
    p.writers.push_back(ProbeWriter{0xBB0, 4, 0, 0});
    ProbeAgent agent(p);
    Addr a = 0;
    for (Cycle c = 0; c < 12; ++c) {
        if (agent.due(c, a))
            agent.delivered(a, c, kNoSeq);
    }
    ASSERT_EQ(agent.writes().size(), 3u);
    EXPECT_EQ(agent.valueAt(0xAA0, 1), 0u);
    EXPECT_EQ(agent.valueAt(0xAA0, 2), 1u);
    EXPECT_EQ(agent.valueAt(0xAA0, 6), 2u);
    EXPECT_EQ(agent.valueAt(0xBB0, 3), 0u);
    EXPECT_EQ(agent.valueAt(0xBB0, 100), 1u);
    EXPECT_EQ(agent.squashCount(), 0u);
}

TEST(LsqSegmented, CommitSchemeSearchesAcrossSegments)
{
    // Pair scheme on a segmented queue: a committing store's LQ
    // violation search walks the segments holding younger loads.
    LsqParams p = segmented(SegAllocPolicy::NoSelfCircular);
    p.checkViolationsAtCommit = true;
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.storeAddrReady(0, 0x7000, 0);
    SeqNum seq = 1;
    for (; seq <= 12; ++seq) {
        f.lsq.allocateLoad(seq, 0x1000 + 4 * seq);
        LoadIssueOutcome out =
            f.lsq.issueLoad(seq, 0x8000 + 16 * seq, seq, false);
        ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    }
    StoreSearchOutcome out = f.lsq.commitStore(0, 40);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, kNoSeq);
    EXPECT_GE(out.segmentsVisited, 3u);   // loads span >= 3 segments
}

TEST(LsqSegmented, CommitSchemeFindsViolatorInLaterSegment)
{
    LsqParams p = segmented(SegAllocPolicy::NoSelfCircular);
    p.checkViolationsAtCommit = true;
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.storeAddrReady(0, 0x7000, 0);
    SeqNum seq = 1;
    for (; seq <= 12; ++seq) {
        f.lsq.allocateLoad(seq, 0x1000 + 4 * seq);
        // The 10th load (third LQ segment) reads the store's address
        // prematurely (predicted independent).
        Addr a = (seq == 10) ? 0x7000 : 0x8000 + 16 * seq;
        f.lsq.issueLoad(seq, a, seq, false);
    }
    StoreSearchOutcome out = f.lsq.commitStore(0, 40);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, 10u);
}

TEST(Lsq, OccupancyHistogramsSample)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(0, 0x1000);
    f.lsq.allocateStore(1, 0x1004);
    f.lsq.sampleOccupancy();
    f.lsq.sampleOccupancy();
    const Histogram &lq = f.stats.getHistogram("lq.occupancy");
    const Histogram &sq = f.stats.getHistogram("sq.occupancy");
    EXPECT_EQ(lq.samples(), 2u);
    EXPECT_DOUBLE_EQ(lq.mean(), 1.0);
    EXPECT_DOUBLE_EQ(sq.mean(), 1.0);
}

TEST(Lsq, AnyOlderStoreUnaddressed)
{
    LsqFixture f(flat());
    f.lsq.allocateStore(1, 0x1000);
    f.lsq.allocateLoad(2, 0x1004);
    f.lsq.allocateStore(3, 0x1008);
    EXPECT_TRUE(f.lsq.anyOlderStoreUnaddressed(2));
    f.lsq.storeAddrReady(1, 0x40, 0);
    EXPECT_FALSE(f.lsq.anyOlderStoreUnaddressed(2));
    // Store 3 is younger than load 2: irrelevant to it.
    EXPECT_TRUE(f.lsq.anyOlderStoreUnaddressed(4));
}

TEST(LsqSegmented, InvalidationWalksLoadSegments)
{
    LsqParams p = segmented(SegAllocPolicy::NoSelfCircular);
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    for (SeqNum seq = 0; seq < 12; ++seq) {
        f.lsq.allocateLoad(seq, 0x1000 + 4 * seq);
        f.lsq.issueLoad(seq, 0x8000 + 16 * seq, seq, false);
    }
    // Match in the last allocated segment: the walk spans them all.
    StoreSearchOutcome out = f.lsq.invalidate(0x8000 + 16 * 11, 40);
    ASSERT_TRUE(out.accepted);
    EXPECT_EQ(out.violationLoad, 11u);
    EXPECT_EQ(out.segmentsVisited, 3u);
}

TEST(LsqSegmented, InFlightWalkBlocksNewSearchAtItsSegment)
{
    // The paper's Section 3.2 contention: an earlier-initiated search
    // arriving at a segment blocks a search initiating there. In our
    // *split-queue* implementation every walk in a given queue travels
    // the same direction at one segment/cycle, so the collision always
    // surfaces at the newcomer's FIRST slot (a plain port rejection
    // that retries next cycle) — the downstream-collision squash case
    // of the combined-queue design cannot arise. See EXPERIMENTS.md.
    LsqParams p = segmented(SegAllocPolicy::NoSelfCircular, 4, 4, 1);
    LsqFixture f(p);
    SeqNum seq = 0;
    for (; seq < 8; ++seq)
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
    for (SeqNum s = 0; s < 8; ++s)
        f.lsq.storeAddrReady(s, 0x5000 + 16 * s, s);
    // Load A (young: all 8 stores are older) initiates at cycle 20:
    // its search walks SQ (seg1, 20) then (seg0, 21).
    f.lsq.allocateLoad(seq, 0x2000);
    ASSERT_EQ(f.lsq.issueLoad(seq, 0x5000, 20, true).status,
              LoadIssueStatus::Accepted);
    // Load B is *older than the seg1 stores* (we model it by noting
    // that a load whose older stores all live in seg0 starts its walk
    // there): issue a second young load at 21 whose single-segment
    // walk (seg0, 21) meets A's walk arriving at seg0 that cycle.
    // With 8 older stores spanning both segments the walk is
    // (seg1, 21), (seg0, 22) — parallel to A's and conflict-free; so
    // instead collide at initiation: a third search in cycle 20.
    ++seq;
    f.lsq.allocateLoad(seq, 0x2004);
    LoadIssueOutcome sameCycle = f.lsq.issueLoad(seq, 0x5010, 20, true);
    EXPECT_EQ(sameCycle.status, LoadIssueStatus::NoSqPort);
    // Retrying one cycle later succeeds (the walk moved on).
    LoadIssueOutcome retry = f.lsq.issueLoad(seq, 0x5010, 21, true);
    EXPECT_EQ(retry.status, LoadIssueStatus::Accepted);
}

TEST(LsqSegmented, ArrivingWalkBlocksShortSearchAtHeadSegment)
{
    // A genuinely cross-positional case: an older load whose matching
    // stores all live in the head segment starts its one-segment walk
    // exactly where a younger load's multi-segment walk arrives.
    LsqParams p = segmented(SegAllocPolicy::NoSelfCircular, 4, 4, 1);
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    SeqNum seq = 0;
    for (; seq < 4; ++seq) {   // stores 0-3 -> SQ segment 0
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
        f.lsq.storeAddrReady(seq, 0x5000 + 16 * seq, seq);
    }
    SeqNum oldLoad = seq++;    // load 4: older stores are seg0 only
    f.lsq.allocateLoad(oldLoad, 0x2000);
    for (; seq < 9; ++seq) {   // stores 5-8 -> SQ segment 1
        f.lsq.allocateStore(seq, 0x1000 + 4 * seq);
        f.lsq.storeAddrReady(seq, 0x6000 + 16 * seq, seq + 4);
    }
    SeqNum youngLoad = seq++;  // load 9: walk spans seg1 then seg0
    f.lsq.allocateLoad(youngLoad, 0x2004);
    ASSERT_EQ(f.lsq.issueLoad(youngLoad, 0x5000, 20, true).status,
              LoadIssueStatus::Accepted);
    // load 4's one-segment walk is (seg0, 21) — exactly where load 9's
    // walk arrives: blocked, then fine a cycle later.
    EXPECT_EQ(f.lsq.issueLoad(oldLoad, 0x5000, 21, true).status,
              LoadIssueStatus::NoSqPort);
    EXPECT_EQ(f.lsq.issueLoad(oldLoad, 0x5000, 22, true).status,
              LoadIssueStatus::Accepted);
}

TEST(Lsq, SqSearchWithNoOlderStoresVisitsOneSegment)
{
    LsqFixture f(flat());
    f.lsq.allocateLoad(0, 0x1000);
    LoadIssueOutcome out = f.lsq.issueLoad(0, 0x9000, 0, true);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    EXPECT_TRUE(out.searchedSq);
    EXPECT_FALSE(out.forwarded);
    EXPECT_EQ(out.sqSegmentsVisited, 1u);
    EXPECT_TRUE(out.constantLatency);
}

TEST(Lsq, ForwardingIgnoredWhenSearchSkipped)
{
    // A matching older store exists, but the load was predicted
    // independent: no forwarding, and the stale read is later caught
    // by the commit-time check.
    LsqParams p = flat();
    p.checkViolationsAtCommit = true;
    LsqFixture f(p);
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.storeAddrReady(0, 0x9000, 0);
    f.lsq.allocateLoad(1, 0x1004);
    LoadIssueOutcome out = f.lsq.issueLoad(1, 0x9000, 2, false);
    ASSERT_EQ(out.status, LoadIssueStatus::Accepted);
    EXPECT_FALSE(out.searchedSq);
    EXPECT_FALSE(out.forwarded);
    StoreSearchOutcome commit = f.lsq.commitStore(0, 10);
    EXPECT_EQ(commit.violationLoad, 1u);
}

// ------------------------------------------------ combined queue ------

TEST(LsqCombined, SharedCapacity)
{
    LsqParams p = flat(2, 4);
    p.combinedQueue = true;   // 4 shared entries total
    LsqFixture f(p);
    f.lsq.allocateLoad(0, 0x1000);
    f.lsq.allocateStore(1, 0x1004);
    f.lsq.allocateLoad(2, 0x1008);
    f.lsq.allocateStore(3, 0x100c);
    EXPECT_FALSE(f.lsq.canAllocateLoad());
    EXPECT_FALSE(f.lsq.canAllocateStore());
    EXPECT_EQ(f.lsq.lqLive(), 2u);
    EXPECT_EQ(f.lsq.sqLive(), 2u);
}

TEST(LsqCombined, CommitInProgramOrderFreesShared)
{
    LsqParams p = flat(2, 4);
    p.combinedQueue = true;
    LsqFixture f(p);
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.allocateLoad(1, 0x1004);
    f.lsq.storeAddrReady(0, 0x40, 0);
    f.lsq.issueLoad(1, 0x48, 1, true);
    f.lsq.commitStore(0, 5);
    f.lsq.commitLoad(1);
    EXPECT_EQ(f.lsq.lqLive(), 0u);
    EXPECT_EQ(f.lsq.sqLive(), 0u);
    // Four fresh entries fit again.
    for (SeqNum s = 10; s < 14; ++s)
        f.lsq.allocateLoad(s, 0x2000 + 4 * s);
    EXPECT_FALSE(f.lsq.canAllocateStore());
}

TEST(LsqCombined, SquashInterleavesTypes)
{
    LsqParams p = flat(2, 8);
    p.combinedQueue = true;
    LsqFixture f(p);
    for (SeqNum s = 0; s < 8; ++s) {
        if (s % 2)
            f.lsq.allocateStore(s, 0x1000 + 4 * s);
        else
            f.lsq.allocateLoad(s, 0x1000 + 4 * s);
    }
    f.lsq.squashFrom(3);
    EXPECT_EQ(f.lsq.lqLive(), 2u);   // loads 0, 2
    EXPECT_EQ(f.lsq.sqLive(), 1u);   // store 1
    // Capacity accounting is consistent: five more fit.
    for (SeqNum s = 20; s < 25; ++s)
        f.lsq.allocateLoad(s, 0x2000 + 4 * s);
    EXPECT_FALSE(f.lsq.canAllocateLoad());
}

TEST(LsqCombined, SharedPortsAcrossSearchTypes)
{
    // One shared port: a load's forwarding search and a store's
    // violation search contend in the same cycle.
    LsqParams p = flat(1, 8);
    p.combinedQueue = true;
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.allocateStore(1, 0x1004);
    f.lsq.allocateLoad(2, 0x1008);
    f.lsq.storeAddrReady(0, 0x40, 0);
    // Load's SQ search at cycle 3 takes the single shared port...
    EXPECT_EQ(f.lsq.issueLoad(2, 0x48, 3, true).status,
              LoadIssueStatus::Accepted);
    // ...so the store's execute-time LQ search is rejected this cycle.
    EXPECT_FALSE(f.lsq.storeAddrReady(1, 0x50, 3).accepted);
    EXPECT_TRUE(f.lsq.storeAddrReady(1, 0x50, 4).accepted);
}

TEST(LsqCombined, CrossDirectionContentionIsReachable)
{
    // Figure 5 / Section 3.2: a store's tail-ward violation walk and a
    // load's head-ward forwarding walk cross inside the shared
    // segments, colliding at a *downstream* slot — the case the split
    // queues preclude.
    LsqParams p;
    p.combinedQueue = true;
    p.numSegments = 4;
    p.lqEntries = 4;
    p.sqEntries = 4;
    p.searchPorts = 1;
    p.loadCheck = LoadCheckPolicy::None;
    LsqFixture f(p);
    // Layout (self-circular, 4 shared entries/segment):
    //   seg0: store0 (match target) + loads 1-3
    //   seg1: loads 4-7
    //   seg2: store8 + loads 9-11
    //   seg3: store12 + load13 (the searcher)
    f.lsq.allocateStore(0, 0x1000);
    f.lsq.storeAddrReady(0, 0x9000, 0);
    SeqNum seq = 1;
    for (; seq <= 7; ++seq) {
        f.lsq.allocateLoad(seq, 0x1000 + 4 * seq);
        f.lsq.issueLoad(seq, 0x8000 + 16 * seq, seq, false);
    }
    f.lsq.allocateStore(8, 0x1020);
    f.lsq.storeAddrReady(8, 0x7000, 8);
    for (seq = 9; seq <= 11; ++seq) {
        f.lsq.allocateLoad(seq, 0x1000 + 4 * seq);
        f.lsq.issueLoad(seq, 0x8000 + 16 * seq, seq, false);
    }
    f.lsq.allocateStore(12, 0x1030);
    f.lsq.storeAddrReady(12, 0x6000, 12);

    // A tail-ward walk (invalidation) books (seg0,20), (seg1,21),
    // (seg2,22) on the shared ports.
    StoreSearchOutcome inval = f.lsq.invalidate(0xdead0, 20);
    ASSERT_TRUE(inval.accepted);
    ASSERT_GE(inval.segmentsVisited, 3u);

    // Load 13's head-ward forwarding walk visits seg3 (store 12),
    // then seg2 (store 8): its first slot (seg3, 21) is free but the
    // downstream slot (seg2, 22) is held by the crossing walk ->
    // Contention (the paper's squash-and-replay case).
    f.lsq.allocateLoad(13, 0x3000);
    LoadIssueOutcome out = f.lsq.issueLoad(13, 0x9000, 21, true);
    EXPECT_EQ(out.status, LoadIssueStatus::Contention);
    EXPECT_GE(f.stats.value("lsq.contention.loads"), 1u);
}
