/**
 * @file
 * Tests for the lsqd service layer (src/serve/).
 *
 * Covers the four pillars docs/SERVICE.md promises: the CRC-framed
 * wire protocol (corrupt/truncated/oversized frames must be rejected,
 * never trusted), the design-point label registry (the fig7 labels
 * must materialize the exact batch-bench configs, or `lsqctl results`
 * loses byte-comparability), the warmed-checkpoint cache (hit/miss/
 * insertion/eviction/rejection accounting under an LRU byte budget,
 * plus restart re-adoption), and the daemon end to end (streamed
 * records bit-identical to a direct Sweep, warm resubmits served from
 * the cache, deterministic queued-cancel, attach replay from any
 * index).
 *
 * Daemon tests run IsolationMode::Thread so they stay valid under
 * TSan/ASan; the fork path is exercised by the serve-smoke CI flavor
 * and the inject/harness suites. The daemon runs on a JobPool worker
 * (the one sanctioned thread-construction site).
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harness/job_pool.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "sample/checkpoint.hh"
#include "sample/serialize.hh"
#include "serve/ckpt_cache.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/proto.hh"
#include "serve/registry.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

namespace fs = std::filesystem;

/** Canonical serialization of a result for bit-identity comparison. */
std::string
fingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << r.benchmark << ":" << r.cycles << ":" << r.committed << "\n"
       << r.stats.dump();
    return os.str();
}

/**
 * Fresh per-test scratch path under gtest's temp dir. Removes
 * whatever a previous run left there, so re-adoptable state (the
 * checkpoint cache survives daemon restarts by design) cannot leak
 * between invocations.
 */
std::string
scratch(const std::string &leaf)
{
    const testing::TestInfo *info =
        testing::UnitTest::GetInstance()->current_test_info();
    std::string path =
        testing::TempDir() + std::string(info->name()) + "_" + leaf;
    std::filesystem::remove_all(path);
    return path;
}

// ============================================================ proto ==

/** Read exactly @p n raw bytes off @p fd (test-side peeking). */
std::string
rawRead(int fd, std::size_t n)
{
    std::string buf(n, '\0');
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, buf.data() + got, n - got, 0);
        if (r <= 0)
            break;
        got += static_cast<std::size_t>(r);
    }
    buf.resize(got);
    return buf;
}

/** Write raw bytes (possibly a deliberately corrupt frame). */
void
rawWrite(int fd, const std::string &data)
{
    std::size_t put = 0;
    while (put < data.size()) {
        ssize_t r = ::send(fd, data.data() + put, data.size() - put,
                           MSG_NOSIGNAL);
        ASSERT_GT(r, 0);
        put += static_cast<std::size_t>(r);
    }
}

TEST(ServeProtoTest, FrameRoundTripAndCleanEof)
{
    int sp[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp));

    const std::string payload = "the quick brown frame";
    std::string error;
    ASSERT_TRUE(sendFrame(sp[0], payload, error)) << error;

    std::string back;
    EXPECT_EQ(1, recvFrame(sp[1], back, error)) << error;
    EXPECT_EQ(payload, back);

    // Closing the writer mid-stream is a *clean* EOF before any byte
    // of the next frame — recvFrame reports 0, not an error.
    ::close(sp[0]);
    EXPECT_EQ(0, recvFrame(sp[1], back, error));
    ::close(sp[1]);
}

TEST(ServeProtoTest, CorruptPayloadRejectedByCrc)
{
    int sp[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp));

    const std::string payload = "bits on the wire";
    std::string error;
    ASSERT_TRUE(sendFrame(sp[0], payload, error)) << error;
    std::string frame = rawRead(sp[1], 8 + payload.size());
    ASSERT_EQ(8 + payload.size(), frame.size());
    ::close(sp[0]);
    ::close(sp[1]);

    // Flip one payload bit and replay the frame: CRC must catch it.
    frame[8] = static_cast<char>(frame[8] ^ 0x40);
    int sp2[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp2));
    rawWrite(sp2[0], frame);
    ::close(sp2[0]);
    std::string back;
    EXPECT_EQ(-1, recvFrame(sp2[1], back, error));
    EXPECT_FALSE(error.empty());
    ::close(sp2[1]);
}

TEST(ServeProtoTest, OversizedAndTruncatedFramesRejected)
{
    // A length header past kMaxServeFrameBytes means a corrupt peer.
    int sp[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
    std::string head(8, '\0');
    const std::uint32_t huge = kMaxServeFrameBytes + 1;
    std::memcpy(head.data(), &huge, sizeof huge);
    rawWrite(sp[0], head);
    ::close(sp[0]);
    std::string back, error;
    EXPECT_EQ(-1, recvFrame(sp[1], back, error));
    EXPECT_FALSE(error.empty());
    ::close(sp[1]);

    // EOF *inside* a frame is a truncation error, not a clean close.
    int sp2[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp2));
    ASSERT_TRUE(sendFrame(sp2[0], "whole frame", error)) << error;
    std::string frame = rawRead(sp2[1], 8 + 11);
    ::close(sp2[0]);
    ::close(sp2[1]);

    int sp3[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp3));
    rawWrite(sp3[0], frame.substr(0, 6));
    ::close(sp3[0]);
    error.clear();
    EXPECT_EQ(-1, recvFrame(sp3[1], back, error));
    EXPECT_FALSE(error.empty());
    ::close(sp3[1]);
}

TEST(ServeProtoTest, SpecCodecRoundTripsEveryField)
{
    SweepRequestSpec spec;
    spec.name = "fig7_sq_speedup";
    spec.configs = {"base", "perfect", "seg=4x16:nsc+ports=2"};
    spec.benchmarks = {"bzip", "gcc", "art"};
    spec.instructions = 123456;
    spec.warmup = 777;
    spec.seed = 42;
    spec.baseSeed = 9;
    spec.ffInsts = 250000;
    spec.jobs = 5;

    SerialWriter w;
    spec.encode(w);
    SerialReader r(w.buffer());
    SweepRequestSpec back = SweepRequestSpec::decode(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(spec.name, back.name);
    EXPECT_EQ(spec.configs, back.configs);
    EXPECT_EQ(spec.benchmarks, back.benchmarks);
    EXPECT_EQ(spec.instructions, back.instructions);
    EXPECT_EQ(spec.warmup, back.warmup);
    EXPECT_EQ(spec.seed, back.seed);
    EXPECT_EQ(spec.baseSeed, back.baseSeed);
    EXPECT_EQ(spec.ffInsts, back.ffInsts);
    EXPECT_EQ(spec.jobs, back.jobs);
}

TEST(ServeProtoTest, VersionSkewThrows)
{
    SerialWriter w;
    w.u32(kServeProtoVersion + 1);
    w.str("sweep");
    SerialReader r(w.buffer());
    EXPECT_THROW(SweepRequestSpec::decode(r), SerialError);
}

TEST(ServeProtoTest, DoneSummaryCodecRoundTrips)
{
    DoneSummary d;
    d.state = 1;
    d.cells = 12;
    d.poisoned = 2;
    d.jobs = 4;
    d.seconds = 1.5;
    d.warmHits = 3;
    d.warmMisses = 1;
    d.message = "12 cells, 2 poisoned";

    SerialWriter w;
    d.encode(w);
    SerialReader r(w.buffer());
    DoneSummary back = DoneSummary::decode(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(d.state, back.state);
    EXPECT_EQ(d.cells, back.cells);
    EXPECT_EQ(d.poisoned, back.poisoned);
    EXPECT_EQ(d.jobs, back.jobs);
    EXPECT_EQ(d.seconds, back.seconds);
    EXPECT_EQ(d.warmHits, back.warmHits);
    EXPECT_EQ(d.warmMisses, back.warmMisses);
    EXPECT_EQ(d.message, back.message);
}

TEST(ServeProtoTest, OverloadedAndGoneRepliesRoundTrip)
{
    // Additive server-to-client types: still lsqscale-serve-v1, but a
    // robustness-aware client must decode both exactly.
    {
        const std::string msg = msgOverloaded(1234, "8 live requests");
        SerialReader r(msg);
        EXPECT_EQ(ServeMsg::Overloaded,
                  static_cast<ServeMsg>(r.u8()));
        EXPECT_EQ(1234u, r.u64());
        EXPECT_EQ("8 live requests", r.str());
        EXPECT_TRUE(r.done());
    }
    {
        const std::string msg = msgGone(7, 42, "records evicted");
        SerialReader r(msg);
        EXPECT_EQ(ServeMsg::Gone, static_cast<ServeMsg>(r.u8()));
        EXPECT_EQ(7u, r.u64());
        EXPECT_EQ(42u, r.u64());
        EXPECT_EQ("records evicted", r.str());
        EXPECT_TRUE(r.done());
    }
}

// =========================================================== reqlog ==

TEST(ReqlogTest, RoundTripsDeduplicatesAndToleratesATornTail)
{
    const std::string path = scratch("reqlog");

    SweepRequestSpec specA;
    specA.name = "survivor";
    specA.configs = {"base", "perfect"};
    specA.benchmarks = {"bzip"};
    specA.instructions = 4000;

    SweepRequestSpec specB = specA;
    specB.name = "finished";

    std::string error;
    int fd = openReqlogForAppend(path, error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(reqlogAppendAccepted(fd, 3, specA, error)) << error;
    ASSERT_TRUE(reqlogAppendAccepted(fd, 4, specB, error)) << error;
    ASSERT_TRUE(reqlogAppendFinished(fd, 4, 0, error)) << error;
    ASSERT_EQ(0, ::close(fd));

    std::vector<ReqlogEntry> entries;
    ASSERT_TRUE(readReqlog(path, entries, error)) << error;
    ASSERT_EQ(2u, entries.size());
    EXPECT_EQ(3u, entries[0].id);
    EXPECT_FALSE(entries[0].finished);
    EXPECT_EQ("survivor", entries[0].spec.name);
    EXPECT_EQ(specA.configs, entries[0].spec.configs);
    EXPECT_EQ(4u, entries[1].id);
    EXPECT_TRUE(entries[1].finished);
    EXPECT_EQ(0u, entries[1].finalState);

    // Reopening for append must not rewrite the magic mid-file.
    fd = openReqlogForAppend(path, error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(reqlogAppendFinished(fd, 3, 1, error)) << error;
    ASSERT_EQ(0, ::close(fd));
    ASSERT_TRUE(readReqlog(path, entries, error)) << error;
    ASSERT_EQ(2u, entries.size());
    EXPECT_TRUE(entries[0].finished);
    EXPECT_EQ(1u, entries[0].finalState);

    // A SIGKILL mid-append leaves a partial frame; everything before
    // it must still parse.
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::app);
        out << "\x40\x00\x00\x00torn";
    }
    ASSERT_TRUE(readReqlog(path, entries, error)) << error;
    EXPECT_EQ(2u, entries.size());

    // The wrong magic is an unusable file, not an empty result.
    const std::string bogus = scratch("bogus");
    {
        std::ofstream out(bogus, std::ios::binary);
        out << "NOTALOG1";
    }
    EXPECT_FALSE(readReqlog(bogus, entries, error));
    EXPECT_FALSE(error.empty());
}

// ========================================================= registry ==

TEST(ServeRegistryTest, AcceptsTheDocumentedVocabulary)
{
    const char *good[] = {
        "base",          "perfect",   "aggressive",
        "pair",          "scaled",    "all",
        "ports=4",       "size=64",   "seg=4x16",
        "seg=4x16:nsc",  "combined=48", "lb=8",
        "lb=0",          "in-order-search", "all+ports=2",
        "seg=8x8+pair",
    };
    for (const char *label : good) {
        std::string error;
        EXPECT_TRUE(validDesignLabel(label, error))
            << label << ": " << error;
    }
}

TEST(ServeRegistryTest, RejectsMalformedLabelsWithAnError)
{
    const char *bad[] = {
        "",       "bogus",   "ports=0", "ports=x", "ports=",
        "seg=4",  "seg=0x4", "seg=4x0", "lb=",     "size=-1",
        "base+",  "+base",   "base++perfect",
    };
    for (const char *label : bad) {
        std::string error;
        EXPECT_FALSE(validDesignLabel(label, error)) << label;
        EXPECT_FALSE(error.empty()) << label;
    }
}

TEST(ServeRegistryTest, Fig7LabelsMatchTheBatchConfigsBitExactly)
{
    // The guarantee the serve-smoke CI flavor leans on: submitting
    // base/perfect/aggressive/pair must reproduce the batch fig7
    // configs exactly, so daemon results are byte-comparable with the
    // bench binary's JSON.
    SweepRequestSpec spec;
    spec.instructions = 2000;
    spec.warmup = 200;
    spec.seed = 1;

    using Modifier = SimConfig (*)(SimConfig);
    const std::pair<const char *, Modifier> rows[] = {
        {"base", nullptr},
        {"perfect", &configs::withPerfectPredictor},
        {"aggressive", &configs::withAggressivePredictor},
        {"pair", &configs::withPairPredictor},
    };
    for (const auto &[label, modify] : rows) {
        SimConfig expected = configs::base("bzip");
        expected.instructions = spec.instructions;
        expected.warmup = spec.warmup;
        expected.seed = spec.seed;
        if (modify)
            expected = modify(expected);

        NamedConfig row = registryNamedConfig(spec, label);
        EXPECT_EQ(label, row.label);
        SimConfig got = row.make("bzip");

        SimResult a = Simulator(expected).run();
        SimResult b = Simulator(got).run();
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << label;
    }
}

// ======================================================= ckpt cache ==

/**
 * Run a short simulation that fast-forwards @p ffInsts and saves a
 * checkpoint at @p path; returns the saving config (whose
 * functionalFingerprint keys the cache).
 */
SimConfig
produceCheckpoint(const std::string &bench, std::uint64_t ffInsts,
                  std::uint64_t seed, const std::string &path)
{
    SimConfig cfg = configs::base(bench);
    cfg.instructions = 500;
    cfg.warmup = 100;
    cfg.seed = seed;
    cfg.ffInsts = ffInsts;
    cfg.saveCkptPath = path;
    Simulator(cfg).run();
    return cfg;
}

TEST(CkptCacheTest, MissThenInsertThenHitAccounting)
{
    const std::string dir = scratch("cache");
    const std::string src = scratch("warm.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("bzip", 3000, 1, src);
    const std::uint64_t fp = functionalFingerprint(cfg);

    CkptCache cache(dir, 64ull << 20);
    EXPECT_EQ("", cache.lookup(fp, 3000));

    std::string finalPath, error;
    ASSERT_TRUE(cache.insert(fp, 3000, src, finalPath, error))
        << error;
    EXPECT_TRUE(fs::exists(finalPath));
    EXPECT_FALSE(fs::exists(src)) << "source must be consumed";

    EXPECT_EQ(finalPath, cache.lookup(fp, 3000));
    // Same functional config, different fast-forward length: a
    // different warm boundary, so a distinct key.
    EXPECT_EQ("", cache.lookup(fp, 4000));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(2u, s.misses);
    EXPECT_EQ(1u, s.hits);
    EXPECT_EQ(1u, s.insertions);
    EXPECT_EQ(0u, s.evictions);
    EXPECT_EQ(0u, s.rejected);
    EXPECT_EQ(1u, s.entries);
    EXPECT_EQ(fs::file_size(finalPath), s.bytes);

    // The cached file is a loadable checkpoint, not just bytes.
    CheckpointInfo info = inspectCheckpoint(finalPath);
    EXPECT_TRUE(info.crcOk);
    EXPECT_EQ(fp, info.meta.fingerprint);
}

TEST(CkptCacheTest, RejectsMismatchedAndCorruptInserts)
{
    const std::string dir = scratch("cache");
    CkptCache cache(dir, 64ull << 20);
    std::string finalPath, error;

    // Fingerprint mismatch: the file's recorded fingerprint disagrees
    // with the key — adopting it would serve wrong restores.
    const std::string src1 = scratch("a.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("bzip", 2000, 1, src1);
    const std::uint64_t fp = functionalFingerprint(cfg);
    EXPECT_FALSE(cache.insert(fp + 1, 2000, src1, finalPath, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fs::exists(src1)) << "rejected source must be removed";

    // ffInsts mismatch against the recorded instCount.
    const std::string src2 = scratch("b.ckpt.tmp");
    produceCheckpoint("bzip", 2000, 1, src2);
    EXPECT_FALSE(cache.insert(fp, 9999, src2, finalPath, error));

    // Garbage bytes.
    const std::string src3 = scratch("c.ckpt.tmp");
    {
        std::ofstream out(src3, std::ios::binary);
        out << "not a checkpoint at all";
    }
    EXPECT_FALSE(cache.insert(fp, 2000, src3, finalPath, error));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(3u, s.rejected);
    EXPECT_EQ(0u, s.insertions);
    EXPECT_EQ(0u, s.entries);
    EXPECT_EQ(0u, s.bytes);
}

TEST(CkptCacheTest, EvictsLeastRecentlyUsedToFitTheByteBudget)
{
    const std::string srcA = scratch("a.ckpt.tmp");
    const std::string srcB = scratch("b.ckpt.tmp");
    SimConfig cfgA = produceCheckpoint("bzip", 2000, 1, srcA);
    SimConfig cfgB = produceCheckpoint("gcc", 2000, 1, srcB);
    const std::uint64_t fpA = functionalFingerprint(cfgA);
    const std::uint64_t fpB = functionalFingerprint(cfgB);
    ASSERT_NE(fpA, fpB);
    const std::uint64_t bytesA = fs::file_size(srcA);
    const std::uint64_t bytesB = fs::file_size(srcB);

    // Budget holds either alone but not both: inserting B must evict
    // A (the least recently used entry) and leave B resident.
    CkptCache cache(scratch("cache"), bytesA + bytesB - 1);
    std::string pathA, pathB, error;
    ASSERT_TRUE(cache.insert(fpA, 2000, srcA, pathA, error)) << error;
    ASSERT_TRUE(cache.insert(fpB, 2000, srcB, pathB, error)) << error;

    EXPECT_FALSE(fs::exists(pathA));
    EXPECT_TRUE(fs::exists(pathB));
    EXPECT_EQ("", cache.lookup(fpA, 2000));
    EXPECT_EQ(pathB, cache.lookup(fpB, 2000));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(2u, s.insertions);
    EXPECT_EQ(1u, s.evictions);
    EXPECT_EQ(1u, s.entries);
    EXPECT_EQ(bytesB, s.bytes);
    EXPECT_LE(s.bytes, s.byteBudget);

    // A file larger than the whole budget can never fit: rejected,
    // residents untouched.
    const std::string srcC = scratch("c.ckpt.tmp");
    produceCheckpoint("art", 2000, 1, srcC);
    CkptCache tiny(scratch("tiny"), 16);
    std::string pathC;
    EXPECT_FALSE(tiny.insert(functionalFingerprint(
                                 configs::base("art")),
                             2000, srcC, pathC, error));
    EXPECT_EQ(1u, tiny.stats().rejected);
}

TEST(CkptCacheTest, RestartReadoptsSurvivingEntries)
{
    const std::string dir = scratch("cache");
    const std::string src = scratch("warm.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("mgrid", 2500, 1, src);
    const std::uint64_t fp = functionalFingerprint(cfg);

    std::string finalPath, error;
    {
        CkptCache cache(dir, 64ull << 20);
        ASSERT_TRUE(cache.insert(fp, 2500, src, finalPath, error))
            << error;
    }

    // Drop a junk file next to it; re-adoption must skip it.
    {
        std::ofstream out(dir + "/junk.ckpt", std::ios::binary);
        out << "torn";
    }

    CkptCache reborn(dir, 64ull << 20);
    EXPECT_EQ(1u, reborn.stats().entries);
    EXPECT_EQ(finalPath, reborn.lookup(fp, 2500));
    EXPECT_FALSE(fs::exists(dir + "/junk.ckpt"));
}

TEST(CkptCacheTest, PinnedEntriesSurviveEvictionUntilUnpinned)
{
    const std::string srcA = scratch("a.ckpt.tmp");
    const std::string srcB = scratch("b.ckpt.tmp");
    const std::string srcC = scratch("c.ckpt.tmp");
    SimConfig cfgA = produceCheckpoint("bzip", 2000, 1, srcA);
    SimConfig cfgB = produceCheckpoint("gcc", 2000, 1, srcB);
    produceCheckpoint("art", 2000, 1, srcC);
    const std::uint64_t fpA = functionalFingerprint(cfgA);
    const std::uint64_t fpB = functionalFingerprint(cfgB);
    const std::uint64_t bytesA = fs::file_size(srcA);
    const std::uint64_t bytesB = fs::file_size(srcB);

    // The budget holds either file alone but never two at once.
    CkptCache cache(scratch("cache"), bytesA + bytesB - 1);
    std::string pathA, pathB, pathC, error;
    ASSERT_TRUE(cache.insert(fpA, 2000, srcA, pathA, error)) << error;

    // A pin lease on A turns the would-be eviction into a budget
    // overshoot: both files stay resident.
    EXPECT_EQ(pathA, cache.pinLookup(fpA, 2000));
    ASSERT_TRUE(cache.insert(fpB, 2000, srcB, pathB, error)) << error;
    EXPECT_TRUE(fs::exists(pathA));
    EXPECT_TRUE(fs::exists(pathB));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(1u, s.pinHits);
    EXPECT_EQ(1u, s.pinned);
    EXPECT_EQ(0u, s.evictions);
    EXPECT_EQ(2u, s.entries);
    EXPECT_GT(s.bytes, s.byteBudget) << "overshoot, not eviction";

    // Once the lease drops, A is evictable again (it is the LRU
    // entry: B's insert refreshed B).
    cache.unpin(fpA, 2000);
    EXPECT_EQ(0u, cache.stats().pinned);
    const std::uint64_t fpC =
        functionalFingerprint(configs::base("art"));
    ASSERT_TRUE(cache.insert(fpC, 2000, srcC, pathC, error)) << error;
    EXPECT_EQ("", cache.lookup(fpA, 2000));
    EXPECT_FALSE(fs::exists(pathA));
    EXPECT_GE(cache.stats().evictions, 1u);
}

TEST(CkptCacheTest, InsertRaceDedupsOntoTheResidentEntry)
{
    // Two concurrent warms of one key both insertPinned: the resident
    // copy wins, the newcomer's temporary is dropped, and *both*
    // requests hold a lease on the surviving file.
    const std::string src1 = scratch("one.ckpt.tmp");
    const std::string src2 = scratch("two.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("bzip", 2000, 1, src1);
    produceCheckpoint("bzip", 2000, 1, src2);
    const std::uint64_t fp = functionalFingerprint(cfg);

    CkptCache cache(scratch("cache"), 64ull << 20);
    std::string path1, path2, error;
    ASSERT_TRUE(cache.insertPinned(fp, 2000, src1, path1, error))
        << error;
    ASSERT_TRUE(cache.insertPinned(fp, 2000, src2, path2, error))
        << error;
    EXPECT_EQ(path1, path2);
    EXPECT_FALSE(fs::exists(src2)) << "loser's file must be dropped";

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(1u, s.insertions);
    EXPECT_EQ(1u, s.entries);
    EXPECT_EQ(1u, s.pinned);

    // Refcounted: one unpin keeps the entry protected, the second
    // releases it.
    cache.unpin(fp, 2000);
    EXPECT_EQ(1u, cache.stats().pinned);
    cache.unpin(fp, 2000);
    EXPECT_EQ(0u, cache.stats().pinned);
}

TEST(CkptCacheTest, LeaseReleasesEveryPinOnExit)
{
    const std::string src = scratch("warm.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("bzip", 2000, 1, src);
    const std::uint64_t fp = functionalFingerprint(cfg);

    CkptCache cache(scratch("cache"), 64ull << 20);
    {
        CkptCacheLease lease(cache);
        EXPECT_EQ("", lease.pinLookup(fp, 2000));
        EXPECT_EQ(0u, lease.held()) << "a miss takes no lease";

        std::string path, error;
        ASSERT_TRUE(lease.insertPinned(fp, 2000, src, path, error))
            << error;
        EXPECT_EQ(1u, lease.held());

        // Re-pinning a key the lease already holds rebalances to one
        // pin — the destructor unpins each key exactly once.
        EXPECT_EQ(path, lease.pinLookup(fp, 2000));
        EXPECT_EQ(1u, lease.held());
        EXPECT_EQ(1u, cache.stats().pinned);
    }
    EXPECT_EQ(0u, cache.stats().pinned)
        << "destructor must release every pin";
}

TEST(CkptCacheTest, ConcurrentPinInsertEvictStress)
{
    // Race pinLookup/insertPinned/unpin against budget-driven eviction
    // from several threads; run under the TSan CI flavor, this is the
    // proof the pin-lease locking is sound. Every hit's file must
    // exist for as long as the pin is held.
    struct Source
    {
        std::uint64_t fp;
        std::string path;
        std::uint64_t bytes;
    };
    std::vector<Source> sources;
    const char *benches[] = {"bzip", "gcc", "art"};
    for (const char *bench : benches) {
        std::string master = scratch(std::string(bench) + ".master");
        SimConfig cfg = produceCheckpoint(bench, 2000, 1, master);
        sources.push_back({functionalFingerprint(cfg), master,
                           fs::file_size(master)});
    }

    // Budget holds roughly one and a half files: constant churn.
    CkptCache cache(scratch("cache"),
                    sources[0].bytes + sources[1].bytes / 2);

    const unsigned kWorkers = 4;
    const int kIters = 12;
    JobPool pool(kWorkers);
    for (unsigned w = 0; w < kWorkers; ++w) {
        pool.submit([&, w] {
            for (int i = 0; i < kIters; ++i) {
                const Source &src =
                    sources[(w + static_cast<unsigned>(i)) %
                            sources.size()];
                std::string hit = cache.pinLookup(src.fp, 2000);
                if (hit.empty()) {
                    std::string tmp = src.path + ".w" +
                                      std::to_string(w) + "_" +
                                      std::to_string(i) + ".tmp";
                    std::error_code ec;
                    fs::copy_file(src.path, tmp, ec);
                    ASSERT_FALSE(ec);
                    std::string finalPath, error;
                    if (cache.insertPinned(src.fp, 2000, tmp,
                                           finalPath, error)) {
                        EXPECT_TRUE(fs::exists(finalPath));
                        cache.unpin(src.fp, 2000);
                    }
                } else {
                    // Pinned ⇒ no concurrent eviction may unlink it.
                    EXPECT_TRUE(fs::exists(hit));
                    cache.unpin(src.fp, 2000);
                }
            }
        });
    }
    pool.wait();

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(0u, s.pinned) << "every lease must be balanced";
    EXPECT_GE(s.entries, 1u);
    // Every iteration did exactly one pinLookup, and each hit took
    // (and released) exactly one lease.
    EXPECT_EQ(static_cast<std::uint64_t>(kWorkers * kIters),
              s.hits + s.misses);
    EXPECT_EQ(s.hits, s.pinHits);
}

// =========================================================== daemon ==

/**
 * A running daemon on a JobPool worker, shut down (via the protocol,
 * like `lsqctl shutdown`) when the harness leaves scope — even when
 * an ASSERT bails out of the test body early.
 */
struct DaemonHarness
{
    ServeOptions opts;
    Daemon daemon;
    JobPool pool{1};

    explicit DaemonHarness(ServeOptions o)
        : opts(o), daemon(std::move(o))
    {
        pool.submit([this] { (void)daemon.run(); });
        waitReady();
    }

    ~DaemonHarness()
    {
        ServeClient client(opts.socketPath);
        std::string error;
        (void)client.shutdown(error);
        pool.wait();
    }

    void waitReady()
    {
        for (int i = 0; i < 1000; ++i) {
            ServeClient client(opts.socketPath);
            std::string json, error;
            if (client.status(0, json, error))
                return;
            ::usleep(10 * 1000);
        }
        FAIL() << "daemon never came up on " << opts.socketPath;
    }
};

ServeOptions
testOptions(const std::string &tag)
{
    ServeOptions opts;
    opts.socketPath = scratch(tag + ".sock");
    opts.cacheDir = scratch(tag + ".cache");
    opts.clientWorkers = 4;
    opts.isolation = IsolationMode::Thread;
    // Isolated spool: without this, the default (<socket>.spool)
    // survives the scratch() cleanup and a previous run's unfinished
    // requests would be re-adopted into an unrelated test.
    opts.spoolDir = scratch(tag + ".spool");
    fs::remove(opts.socketPath);
    return opts;
}

/** Collect a full record stream after submit()/attach(). */
struct Stream
{
    std::vector<std::pair<std::uint64_t, std::string>> records;
    DoneSummary done;

    bool drain(ServeClient &client, std::string &error)
    {
        return client.stream(
            [this](std::uint64_t index, const std::string &payload) {
                records.emplace_back(index, payload);
            },
            done, error);
    }
};

/**
 * Per-cell result fingerprints of a drained stream, in (row, col)
 * order — the byte-identity currency of the concurrency tests (raw
 * record payloads embed wall-clock seconds, so comparing them
 * directly would be flaky by construction).
 */
std::vector<std::string>
cellFingerprints(const Stream &stream)
{
    JournalAccumulator acc;
    std::string error;
    for (const auto &[index, payload] : stream.records)
        EXPECT_TRUE(acc.add(payload, error)) << error;
    std::vector<std::string> out;
    for (const JournalCell &cell : acc.contents().cells) {
        EXPECT_TRUE(cell.hasResult);
        out.push_back(cell.hasResult ? fingerprint(cell.result)
                                     : std::string());
    }
    return out;
}

TEST(ServeDaemonTest, StreamedResultsAreBitIdenticalToADirectSweep)
{
    DaemonHarness harness(testOptions("cold"));

    SweepRequestSpec spec;
    spec.name = "cold_grid";
    spec.configs = {"base", "perfect"};
    spec.benchmarks = {"bzip", "gcc"};
    spec.instructions = 2000;
    spec.warmup = 200;
    spec.baseSeed = 7;
    spec.jobs = 2;

    ServeClient client(harness.opts.socketPath);
    std::uint64_t id = 0;
    std::string error;
    ASSERT_TRUE(client.submit(spec, id, error)) << error;
    EXPECT_GE(id, 1u);

    Stream stream;
    ASSERT_TRUE(stream.drain(client, error)) << error;
    EXPECT_EQ(0, stream.done.state);
    EXPECT_EQ(4u, stream.done.cells);
    EXPECT_EQ(0u, stream.done.poisoned);

    // Indices are dense from zero — that's what makes Attach's
    // fromIndex a resume cursor.
    for (std::size_t i = 0; i < stream.records.size(); ++i)
        EXPECT_EQ(i, stream.records[i].first);

    // The stream replays through the journal machinery…
    JournalAccumulator acc;
    for (const auto &[index, payload] : stream.records)
        ASSERT_TRUE(acc.add(payload, error)) << error;
    JournalContents contents = acc.contents();
    EXPECT_EQ(spec.name, contents.name);
    EXPECT_EQ(2u, contents.rows);
    EXPECT_EQ(2u, contents.cols);
    ASSERT_EQ(4u, contents.cells.size());

    // …and a raw tee of the frames is a valid journal file, exactly
    // what `lsqctl --journal` writes.
    const std::string teePath = scratch("tee.journal");
    {
        std::ofstream out(teePath, std::ios::binary);
        out.write(kJournalMagic, sizeof kJournalMagic);
        for (const auto &[index, payload] : stream.records) {
            std::string frame = frameJournalRecord(payload);
            out.write(frame.data(),
                      static_cast<std::streamsize>(frame.size()));
        }
    }
    JournalContents teed;
    ASSERT_TRUE(readJournal(teePath, teed, error)) << error;
    EXPECT_EQ(4u, teed.cells.size());
    EXPECT_FALSE(teed.truncatedTail);

    // Bit-identity against the same grid run directly in-process.
    std::vector<NamedConfig> rows;
    for (const std::string &label : spec.configs)
        rows.push_back(registryNamedConfig(spec, label));
    SweepOptions so;
    so.name = spec.name;
    so.baseSeed = spec.baseSeed;
    so.jobs = 2;
    so.isolation = IsolationMode::Thread;
    Sweep sweep(rows, spec.benchmarks, so);
    sweep.setJobFn(runSimulationJob);
    SweepOutcome direct = sweep.run();

    SweepOutcome served = outcomeFromJournal(
        contents, stream.done.jobs, stream.done.seconds);
    ASSERT_EQ(direct.grid.size(), served.grid.size());
    for (std::size_t r = 0; r < direct.grid.size(); ++r) {
        ASSERT_EQ(direct.grid[r].size(), served.grid[r].size());
        for (std::size_t c = 0; c < direct.grid[r].size(); ++c) {
            const SweepCell &want = direct.grid[r][c];
            const SweepCell &got = served.grid[r][c];
            EXPECT_EQ(JobStatus::Ok, got.status);
            EXPECT_EQ(want.configLabel, got.configLabel);
            EXPECT_EQ(want.benchmark, got.benchmark);
            EXPECT_EQ(fingerprint(want.result),
                      fingerprint(got.result));
        }
    }
    EXPECT_EQ(0u, served.poisonedCells);

    // Attach replays the whole stream, or any suffix of it.
    ServeClient replay(harness.opts.socketPath);
    ASSERT_TRUE(replay.attach(id, 0, error)) << error;
    Stream full;
    ASSERT_TRUE(full.drain(replay, error)) << error;
    EXPECT_EQ(stream.records, full.records);
    EXPECT_EQ(0, full.done.state);

    const std::uint64_t last = stream.records.size() - 1;
    ServeClient tail(harness.opts.socketPath);
    ASSERT_TRUE(tail.attach(id, last, error)) << error;
    Stream suffix;
    ASSERT_TRUE(suffix.drain(tail, error)) << error;
    ASSERT_EQ(1u, suffix.records.size());
    EXPECT_EQ(stream.records.back(), suffix.records.front());

    // Unknown ids are a protocol error, not a hang.
    ServeClient bogus(harness.opts.socketPath);
    EXPECT_FALSE(bogus.attach(9999, 0, error));
    EXPECT_NE(std::string::npos, error.find("unknown request"));
}

TEST(ServeDaemonTest, WarmResubmitHitsTheCheckpointCache)
{
    DaemonHarness harness(testOptions("warm"));

    SweepRequestSpec spec;
    spec.name = "warm_grid";
    spec.configs = {"base"};
    spec.benchmarks = {"bzip"};
    spec.instructions = 1000;
    spec.warmup = 200;
    spec.ffInsts = 2000;

    auto runOnce = [&](Stream &stream) {
        ServeClient client(harness.opts.socketPath);
        std::uint64_t id = 0;
        std::string error;
        ASSERT_TRUE(client.submit(spec, id, error)) << error;
        ASSERT_TRUE(stream.drain(client, error)) << error;
        ASSERT_EQ(0, stream.done.state);
        ASSERT_EQ(0u, stream.done.poisoned);
    };

    Stream first;
    runOnce(first);
    EXPECT_EQ(0u, first.done.warmHits);
    EXPECT_EQ(1u, first.done.warmMisses);

    Stream second;
    runOnce(second);
    EXPECT_EQ(1u, second.done.warmHits);
    EXPECT_EQ(0u, second.done.warmMisses);

    // Restoring from the cached checkpoint is bit-identical to the
    // fast-forward it replaced.
    ASSERT_EQ(first.records.size(), second.records.size());
    JournalAccumulator a, b;
    std::string error;
    for (const auto &[i, p] : first.records)
        ASSERT_TRUE(a.add(p, error)) << error;
    for (const auto &[i, p] : second.records)
        ASSERT_TRUE(b.add(p, error)) << error;
    JournalContents ca = a.contents(), cb = b.contents();
    ASSERT_EQ(ca.cells.size(), cb.cells.size());
    for (std::size_t i = 0; i < ca.cells.size(); ++i) {
        ASSERT_TRUE(ca.cells[i].hasResult);
        ASSERT_TRUE(cb.cells[i].hasResult);
        EXPECT_EQ(fingerprint(ca.cells[i].result),
                  fingerprint(cb.cells[i].result));
    }

    CkptCacheStats s = harness.daemon.cache().stats();
    EXPECT_EQ(1u, s.hits);
    EXPECT_EQ(1u, s.misses);
    EXPECT_EQ(1u, s.insertions);
    EXPECT_EQ(1u, s.entries);

    // The stats JSON the daemon serves carries the same counters.
    ServeClient client(harness.opts.socketPath);
    std::string json;
    ASSERT_TRUE(client.stats(json, error)) << error;
    EXPECT_NE(std::string::npos, json.find("\"hits\": 1"));
    EXPECT_NE(std::string::npos, json.find("\"insertions\": 1"));
}

TEST(ServeDaemonTest, CancellingAQueuedRequestIsDeterministic)
{
    DaemonHarness harness(testOptions("cancel"));
    std::string error;

    // Request A occupies the single executor long enough for the
    // cancel round-trip (microseconds on a local socket) to land
    // while B is still queued behind it.
    SweepRequestSpec slow;
    slow.name = "slow";
    slow.configs = {"base", "perfect"};
    slow.benchmarks = {"bzip"};
    slow.instructions = 150000;
    slow.warmup = 1000;

    ServeClient clientA(harness.opts.socketPath);
    std::uint64_t idA = 0;
    ASSERT_TRUE(clientA.submit(slow, idA, error)) << error;
    clientA.close(); // abandon the stream; the daemon carries on

    SweepRequestSpec queued;
    queued.name = "queued";
    queued.configs = {"base"};
    queued.benchmarks = {"bzip", "gcc"};
    queued.instructions = 50000;
    queued.warmup = 1000;

    ServeClient clientB(harness.opts.socketPath);
    std::uint64_t idB = 0;
    ASSERT_TRUE(clientB.submit(queued, idB, error)) << error;
    clientB.close();

    ServeClient killer(harness.opts.socketPath);
    ASSERT_TRUE(killer.cancel(idB, error)) << error;
    EXPECT_FALSE(killer.cancel(4242, error));
    EXPECT_NE(std::string::npos, error.find("unknown request"));

    // B terminates Cancelled; its stream still ends in a Done frame
    // so a watching client is never left hanging.
    ServeClient watchB(harness.opts.socketPath);
    ASSERT_TRUE(watchB.attach(idB, 0, error)) << error;
    Stream streamB;
    ASSERT_TRUE(streamB.drain(watchB, error)) << error;
    EXPECT_EQ(1, streamB.done.state);

    // A is unaffected: drain it to completion.
    ServeClient watchA(harness.opts.socketPath);
    ASSERT_TRUE(watchA.attach(idA, 0, error)) << error;
    Stream streamA;
    ASSERT_TRUE(streamA.drain(watchA, error)) << error;
    EXPECT_EQ(0, streamA.done.state);
    EXPECT_EQ(2u, streamA.done.cells);

    // Status reflects both verdicts.
    ServeClient status(harness.opts.socketPath);
    std::string json;
    ASSERT_TRUE(status.status(0, json, error)) << error;
    EXPECT_NE(std::string::npos, json.find("\"cancelled\""));
    EXPECT_NE(std::string::npos, json.find("\"done\""));
}

TEST(ServeDaemonTest, RejectsInvalidSubmissions)
{
    DaemonHarness harness(testOptions("reject"));
    std::string error;
    std::uint64_t id = 0;

    SweepRequestSpec spec;
    spec.configs = {"bogus-label"};
    spec.benchmarks = {"bzip"};
    spec.instructions = 1000;
    ServeClient c1(harness.opts.socketPath);
    EXPECT_FALSE(c1.submit(spec, id, error));
    EXPECT_FALSE(error.empty());

    spec.configs = {"base"};
    spec.benchmarks = {"no-such-workload"};
    ServeClient c2(harness.opts.socketPath);
    EXPECT_FALSE(c2.submit(spec, id, error));

    spec.benchmarks = {};
    ServeClient c3(harness.opts.socketPath);
    EXPECT_FALSE(c3.submit(spec, id, error));
}

TEST(ServeDaemonTest, ConcurrentExecutorsShareTheCacheBitIdentically)
{
    std::string error;

    SweepRequestSpec specA;
    specA.name = "grid_a";
    specA.configs = {"base", "perfect"};
    specA.benchmarks = {"bzip"};
    specA.instructions = 1000;
    specA.warmup = 200;
    specA.ffInsts = 2000;
    specA.baseSeed = 1;
    specA.jobs = 2;

    SweepRequestSpec specB = specA;
    specB.name = "grid_b";
    specB.configs = {"base", "aggressive"};

    // Reference: the same two grids on a serial (one-executor) daemon.
    std::vector<std::string> refA, refB;
    {
        DaemonHarness serial(testOptions("serial"));
        for (int i = 0; i < 2; ++i) {
            ServeClient client(serial.opts.socketPath);
            std::uint64_t id = 0;
            ASSERT_TRUE(client.submit(i == 0 ? specA : specB, id,
                                      error))
                << error;
            Stream stream;
            ASSERT_TRUE(stream.drain(client, error)) << error;
            ASSERT_EQ(0, stream.done.state);
            (i == 0 ? refA : refB) = cellFingerprints(stream);
        }
    }
    ASSERT_EQ(2u, refA.size());
    ASSERT_EQ(2u, refB.size());

    ServeOptions opts = testOptions("burst");
    opts.executors = 4; // the acceptance bar: both requests overlap
    DaemonHarness harness(opts);

    // Warm the cache first so both overlapping requests provably take
    // pin leases on a checkpoint neither of them inserted.
    {
        SweepRequestSpec warm = specA;
        warm.name = "warm";
        warm.configs = {"base"};
        ServeClient client(harness.opts.socketPath);
        std::uint64_t id = 0;
        ASSERT_TRUE(client.submit(warm, id, error)) << error;
        Stream stream;
        ASSERT_TRUE(stream.drain(client, error)) << error;
        ASSERT_EQ(0, stream.done.state);
    }

    // Both submitted before either is drained: with spare executors
    // the sweeps genuinely overlap, racing pinLookup/insert/evict on
    // the shared cache.
    ServeClient clientA(harness.opts.socketPath);
    ServeClient clientB(harness.opts.socketPath);
    std::uint64_t idA = 0, idB = 0;
    ASSERT_TRUE(clientA.submit(specA, idA, error)) << error;
    ASSERT_TRUE(clientB.submit(specB, idB, error)) << error;

    Stream streamA, streamB;
    ASSERT_TRUE(streamA.drain(clientA, error)) << error;
    ASSERT_TRUE(streamB.drain(clientB, error)) << error;
    ASSERT_EQ(0, streamA.done.state);
    ASSERT_EQ(0, streamB.done.state);
    EXPECT_GE(streamA.done.warmHits, 1u);
    EXPECT_GE(streamB.done.warmHits, 1u);

    // The contended results are the uncontended results, bit for bit.
    EXPECT_EQ(refA, cellFingerprints(streamA));
    EXPECT_EQ(refB, cellFingerprints(streamB));

    CkptCacheStats s = harness.daemon.cache().stats();
    EXPECT_GE(s.pinHits, 2u) << "cross-request leased reuse";

    // The leases release in the sweep's epilogue, just after the Done
    // frame becomes observable — poll briefly.
    for (int i = 0; i < 200; ++i) {
        if (harness.daemon.cache().stats().pinned == 0)
            break;
        ::usleep(10 * 1000);
    }
    EXPECT_EQ(0u, harness.daemon.cache().stats().pinned)
        << "all leases released";
}

TEST(ServeDaemonTest, CancelMidRunPoisonsOnlyThatRequest)
{
    std::string error;

    SweepRequestSpec fast;
    fast.name = "survivor";
    fast.configs = {"base", "perfect"};
    fast.benchmarks = {"gcc"};
    fast.instructions = 2000;
    fast.warmup = 200;
    fast.baseSeed = 7;
    fast.jobs = 2;

    // Reference: the survivor grid on an idle daemon.
    std::vector<std::string> ref;
    {
        DaemonHarness solo(testOptions("solo"));
        ServeClient client(solo.opts.socketPath);
        std::uint64_t id = 0;
        ASSERT_TRUE(client.submit(fast, id, error)) << error;
        Stream stream;
        ASSERT_TRUE(stream.drain(client, error)) << error;
        ASSERT_EQ(0, stream.done.state);
        ref = cellFingerprints(stream);
    }

    ServeOptions opts = testOptions("cancelrun");
    opts.executors = 2;
    DaemonHarness harness(opts);

    // The doomed request holds one executor (and cache pins) while
    // the survivor runs beside it on the other.
    SweepRequestSpec doomed;
    doomed.name = "doomed";
    doomed.configs = {"base", "perfect", "aggressive"};
    doomed.benchmarks = {"bzip"};
    doomed.instructions = 150000;
    doomed.warmup = 1000;
    doomed.ffInsts = 2000;
    doomed.jobs = 1;

    ServeClient clientD(harness.opts.socketPath);
    std::uint64_t idD = 0;
    ASSERT_TRUE(clientD.submit(doomed, idD, error)) << error;
    clientD.close();

    ServeClient clientF(harness.opts.socketPath);
    std::uint64_t idF = 0;
    ASSERT_TRUE(clientF.submit(fast, idF, error)) << error;

    ServeClient killer(harness.opts.socketPath);
    ASSERT_TRUE(killer.cancel(idD, error)) << error;

    // The survivor completes clean and bit-identical to its
    // uncontended run — the poison stays in the cancelled request.
    Stream streamF;
    ASSERT_TRUE(streamF.drain(clientF, error)) << error;
    EXPECT_EQ(0, streamF.done.state);
    EXPECT_EQ(0u, streamF.done.poisoned);
    EXPECT_EQ(ref, cellFingerprints(streamF));

    // The doomed request terminates Cancelled, with a Done frame.
    ServeClient watch(harness.opts.socketPath);
    ASSERT_TRUE(watch.attach(idD, 0, error)) << error;
    Stream streamD;
    ASSERT_TRUE(streamD.drain(watch, error)) << error;
    EXPECT_EQ(1, streamD.done.state);

    // Its cache pins drain with the lease (destructor runs just after
    // the Done frame is observable — poll briefly).
    for (int i = 0; i < 200; ++i) {
        if (harness.daemon.cache().stats().pinned == 0)
            break;
        ::usleep(10 * 1000);
    }
    EXPECT_EQ(0u, harness.daemon.cache().stats().pinned);
}

TEST(ServeDaemonTest, OverloadedSubmitsGetARetryHintThenSucceed)
{
    ServeOptions opts = testOptions("overload");
    opts.executors = 1;
    opts.maxQueueDepth = 1;
    DaemonHarness harness(opts);
    std::string error;

    SweepRequestSpec slow;
    slow.name = "hog";
    slow.configs = {"base"};
    slow.benchmarks = {"bzip"};
    slow.instructions = 150000;
    slow.warmup = 1000;

    ServeClient hog(harness.opts.socketPath);
    std::uint64_t idSlow = 0;
    ASSERT_TRUE(hog.submit(slow, idSlow, error)) << error;
    hog.close();

    // The daemon is at its admission limit: a second submit gets a
    // structured refusal with a retry hint, not an unbounded queue
    // slot (and not a dead connection).
    SweepRequestSpec quick;
    quick.name = "retried";
    quick.configs = {"base"};
    quick.benchmarks = {"gcc"};
    quick.instructions = 2000;
    quick.warmup = 200;

    std::uint64_t id = 0;
    std::uint64_t retryAfterMs = 0;
    {
        ServeClient refused(harness.opts.socketPath);
        ASSERT_FALSE(refused.submit(quick, id, error, &retryAfterMs));
        EXPECT_GE(retryAfterMs, 100u);
        EXPECT_LE(retryAfterMs, 10000u);
        EXPECT_NE(std::string::npos, error.find("overloaded"));
    }

    // Free the slot, then retry the way lsqctl does: resubmit only on
    // Overloaded refusals, backing off, until admitted.
    ServeClient killer(harness.opts.socketPath);
    ASSERT_TRUE(killer.cancel(idSlow, error)) << error;

    bool accepted = false;
    for (int i = 0; i < 500 && !accepted; ++i) {
        ServeClient again(harness.opts.socketPath);
        std::uint64_t hint = 0;
        if (again.submit(quick, id, error, &hint)) {
            accepted = true;
            Stream stream;
            ASSERT_TRUE(stream.drain(again, error)) << error;
            EXPECT_EQ(0, stream.done.state);
            EXPECT_EQ(1u, stream.done.cells);
        } else {
            ASSERT_NE(0u, hint)
                << "only Overloaded is expected here: " << error;
            ::usleep(10 * 1000);
        }
    }
    EXPECT_TRUE(accepted);
}

TEST(ServeDaemonTest, EvictedRecordsRaiseTheAttachFloorWithGone)
{
    ServeOptions opts = testOptions("retention");
    // A one-byte record budget: as soon as a later request streams,
    // every terminal request's records evict.
    opts.recordBudgetBytes = 1;
    DaemonHarness harness(opts);
    std::string error;

    SweepRequestSpec spec;
    spec.name = "first";
    spec.configs = {"base"};
    spec.benchmarks = {"bzip"};
    spec.instructions = 2000;
    spec.warmup = 200;

    ServeClient c1(harness.opts.socketPath);
    std::uint64_t id1 = 0;
    ASSERT_TRUE(c1.submit(spec, id1, error)) << error;
    Stream s1;
    ASSERT_TRUE(s1.drain(c1, error)) << error;
    ASSERT_EQ(0, s1.done.state);
    ASSERT_GE(s1.records.size(), 2u);

    // While the first request was live its records were exempt; the
    // second request's streaming pushes the total over budget and
    // evicts them (terminal, oldest id first).
    SweepRequestSpec spec2 = spec;
    spec2.name = "second";
    ServeClient c2(harness.opts.socketPath);
    std::uint64_t id2 = 0;
    ASSERT_TRUE(c2.submit(spec2, id2, error)) << error;
    Stream s2;
    ASSERT_TRUE(s2.drain(c2, error)) << error;
    ASSERT_EQ(0, s2.done.state);

    // Attaching below the floor gets an explicit Gone answer naming
    // the first index still available — never a silent wrong resume.
    ServeClient below(harness.opts.socketPath);
    ASSERT_TRUE(below.attach(id1, 0, error)) << error;
    DoneSummary done;
    std::uint64_t floor = 0;
    EXPECT_FALSE(below.stream(nullptr, done, error, &floor));
    EXPECT_EQ(s1.records.size(), floor)
        << "every record of the terminal request evicts";
    EXPECT_NE(std::string::npos, error.find("retention floor"));

    // At (or above) the floor the stream is still serviceable: an
    // empty replay that ends in the real Done frame.
    ServeClient at(harness.opts.socketPath);
    ASSERT_TRUE(at.attach(id1, floor, error)) << error;
    Stream tail;
    ASSERT_TRUE(tail.drain(at, error)) << error;
    EXPECT_EQ(0u, tail.records.size());
    EXPECT_EQ(0, tail.done.state);

    // Status reports the raised floor.
    ServeClient status(harness.opts.socketPath);
    std::string json;
    ASSERT_TRUE(status.status(id1, json, error)) << error;
    std::string want =
        "\"records_floor\": " + std::to_string(floor);
    EXPECT_NE(std::string::npos, json.find(want)) << json;
}

TEST(ServeDaemonTest, RestartReadoptsJournaledRequests)
{
    ServeOptions opts = testOptions("readopt");
    std::string error;
    fs::create_directories(opts.spoolDir);

    SweepRequestSpec spec;
    spec.name = "readopt";
    spec.configs = {"base", "perfect"};
    spec.benchmarks = {"bzip"};
    spec.instructions = 2000;
    spec.warmup = 200;
    spec.baseSeed = 3;
    spec.jobs = 2;

    // A dead daemon's spool: request 5 durably accepted but never
    // finished, its journal holding the SweepBegin record it had
    // already streamed — plus a stale journal from a request the
    // reqlog knows nothing about.
    int fd = openReqlogForAppend(opts.spoolDir + "/reqlog", error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(reqlogAppendAccepted(fd, 5, spec, error)) << error;
    ASSERT_EQ(0, ::close(fd));

    const std::string begin = encodeSweepBeginRecord(
        spec.name, spec.configs, spec.benchmarks);
    {
        std::ofstream out(opts.spoolDir + "/req_5.journal",
                          std::ios::binary);
        out.write(kJournalMagic, sizeof kJournalMagic);
        std::string frame = frameJournalRecord(begin);
        out.write(frame.data(),
                  static_cast<std::streamsize>(frame.size()));
    }
    {
        std::ofstream out(opts.spoolDir + "/req_99.journal",
                          std::ios::binary);
        out << "stale";
    }

    {
        DaemonHarness harness(opts);

        // The janitor removed the journal nobody owns.
        EXPECT_FALSE(fs::exists(opts.spoolDir + "/req_99.journal"));

        // Request 5 is live again and completes; its stream still
        // starts at index 0 with the record the dead daemon emitted,
        // so a client's Attach(fromIndex) cursor stays valid.
        ServeClient att(harness.opts.socketPath);
        ASSERT_TRUE(att.attach(5, 0, error)) << error;
        Stream stream;
        ASSERT_TRUE(stream.drain(att, error)) << error;
        EXPECT_EQ(0, stream.done.state);
        ASSERT_GE(stream.records.size(), 3u);
        EXPECT_EQ(begin, stream.records[0].second);

        // The duplicate SweepBegin the re-run emits deduplicates away
        // in replay; the grid comes back whole.
        JournalAccumulator acc;
        for (const auto &[index, payload] : stream.records)
            ASSERT_TRUE(acc.add(payload, error)) << error;
        JournalContents contents = acc.contents();
        EXPECT_EQ(2u, contents.rows);
        EXPECT_EQ(1u, contents.cols);
        ASSERT_EQ(2u, contents.cells.size());
        for (const JournalCell &cell : contents.cells)
            EXPECT_EQ(JobStatus::Ok, cell.status);

        // Ids of logged requests are never reissued.
        ServeClient sub(harness.opts.socketPath);
        SweepRequestSpec after = spec;
        after.name = "after";
        after.configs = {"base"};
        std::uint64_t id = 0;
        ASSERT_TRUE(sub.submit(after, id, error)) << error;
        EXPECT_GE(id, 6u);
        Stream afterStream;
        ASSERT_TRUE(afterStream.drain(sub, error)) << error;
        EXPECT_EQ(0, afterStream.done.state);
    }

    // Both requests were durably marked finished: a second restart
    // compacts them away and re-adopts nothing.
    EXPECT_FALSE(fs::exists(opts.spoolDir + "/req_5.journal"));
    DaemonHarness reborn(opts);
    ServeClient status(opts.socketPath);
    std::string json;
    ASSERT_TRUE(status.status(0, json, error)) << error;
    EXPECT_EQ(std::string::npos, json.find("\"id\": 5")) << json;
}

TEST(ServeDaemonTest, RefusesToStealALiveDaemonsSocket)
{
    DaemonHarness harness(testOptions("steal"));

    // A second daemon pointed at the same socket must probe, find a
    // live answerer, and refuse — not silently unlink and rebind.
    Daemon thief(harness.opts);
    EXPECT_EQ(1, thief.run());

    // The incumbent is unharmed.
    ServeClient client(harness.opts.socketPath);
    std::string json, error;
    EXPECT_TRUE(client.status(0, json, error)) << error;
}

// ================================================= outcome rebuild ==

TEST(ServeClientTest, OutcomeFromJournalFlagsMissingCells)
{
    JournalAccumulator acc;
    std::string error;
    ASSERT_TRUE(acc.add(
        encodeSweepBeginRecord("partial", {"base"}, {"bzip", "gcc"}),
        error))
        << error;

    JournalCell cell;
    cell.row = 0;
    cell.col = 0;
    cell.status = JobStatus::Failed;
    cell.attempts = 2;
    cell.error = "boom";
    ASSERT_TRUE(acc.add(encodeCellRecord(cell), error)) << error;

    SweepOutcome out = outcomeFromJournal(acc.contents(), 3, 1.25);
    ASSERT_EQ(1u, out.grid.size());
    ASSERT_EQ(2u, out.grid[0].size());
    EXPECT_EQ(JobStatus::Failed, out.grid[0][0].status);
    EXPECT_EQ("boom", out.grid[0][0].error);
    EXPECT_EQ(JobStatus::Failed, out.grid[0][1].status);
    EXPECT_NE(std::string::npos,
              out.grid[0][1].error.find("missing from stream"));
    EXPECT_EQ(2u, out.poisonedCells);
    EXPECT_EQ(3u, out.jobs);
    EXPECT_EQ(1.25, out.seconds);
}

// =========================================================== config ==

TEST(ServeOptionsTest, ParseServeArgsCoversEveryFlag)
{
    ServeOptions opts;
    std::string error;
    ASSERT_TRUE(parseServeArgs(
        {"--socket", "/tmp/x.sock", "--cache-dir", "/tmp/x.cache",
         "--cache-mb", "8", "--clients", "2", "--executors", "3",
         "--max-queue", "9", "--record-mb", "7", "--spool-dir",
         "/tmp/x.spool", "--isolation", "thread"},
        opts, error))
        << error;
    EXPECT_EQ("/tmp/x.sock", opts.socketPath);
    EXPECT_EQ("/tmp/x.cache", opts.cacheDir);
    EXPECT_EQ(8ull << 20, opts.cacheBudgetBytes);
    EXPECT_EQ(2u, opts.clientWorkers);
    EXPECT_EQ(3u, opts.executors);
    EXPECT_EQ(9u, opts.maxQueueDepth);
    EXPECT_EQ(7ull << 20, opts.recordBudgetBytes);
    EXPECT_EQ("/tmp/x.spool", opts.spoolDir);
    EXPECT_EQ(IsolationMode::Thread, opts.isolation);

    ServeOptions bad;
    EXPECT_FALSE(parseServeArgs({"--cache-mb", "lots"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--isolation", "yolo"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--frobnicate"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--socket"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--executors", "0"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--executors", "65"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--max-queue", "0"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--record-mb", "many"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--spool-dir"}, bad, error));
}

} // namespace
} // namespace lsqscale
