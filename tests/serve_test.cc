/**
 * @file
 * Tests for the lsqd service layer (src/serve/).
 *
 * Covers the four pillars docs/SERVICE.md promises: the CRC-framed
 * wire protocol (corrupt/truncated/oversized frames must be rejected,
 * never trusted), the design-point label registry (the fig7 labels
 * must materialize the exact batch-bench configs, or `lsqctl results`
 * loses byte-comparability), the warmed-checkpoint cache (hit/miss/
 * insertion/eviction/rejection accounting under an LRU byte budget,
 * plus restart re-adoption), and the daemon end to end (streamed
 * records bit-identical to a direct Sweep, warm resubmits served from
 * the cache, deterministic queued-cancel, attach replay from any
 * index).
 *
 * Daemon tests run IsolationMode::Thread so they stay valid under
 * TSan/ASan; the fork path is exercised by the serve-smoke CI flavor
 * and the inject/harness suites. The daemon runs on a JobPool worker
 * (the one sanctioned thread-construction site).
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "harness/job_pool.hh"
#include "harness/journal.hh"
#include "harness/sweep.hh"
#include "sample/checkpoint.hh"
#include "sample/serialize.hh"
#include "serve/ckpt_cache.hh"
#include "serve/client.hh"
#include "serve/daemon.hh"
#include "serve/proto.hh"
#include "serve/registry.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

namespace fs = std::filesystem;

/** Canonical serialization of a result for bit-identity comparison. */
std::string
fingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << r.benchmark << ":" << r.cycles << ":" << r.committed << "\n"
       << r.stats.dump();
    return os.str();
}

/**
 * Fresh per-test scratch path under gtest's temp dir. Removes
 * whatever a previous run left there, so re-adoptable state (the
 * checkpoint cache survives daemon restarts by design) cannot leak
 * between invocations.
 */
std::string
scratch(const std::string &leaf)
{
    const testing::TestInfo *info =
        testing::UnitTest::GetInstance()->current_test_info();
    std::string path =
        testing::TempDir() + std::string(info->name()) + "_" + leaf;
    std::filesystem::remove_all(path);
    return path;
}

// ============================================================ proto ==

/** Read exactly @p n raw bytes off @p fd (test-side peeking). */
std::string
rawRead(int fd, std::size_t n)
{
    std::string buf(n, '\0');
    std::size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, buf.data() + got, n - got, 0);
        if (r <= 0)
            break;
        got += static_cast<std::size_t>(r);
    }
    buf.resize(got);
    return buf;
}

/** Write raw bytes (possibly a deliberately corrupt frame). */
void
rawWrite(int fd, const std::string &data)
{
    std::size_t put = 0;
    while (put < data.size()) {
        ssize_t r = ::send(fd, data.data() + put, data.size() - put,
                           MSG_NOSIGNAL);
        ASSERT_GT(r, 0);
        put += static_cast<std::size_t>(r);
    }
}

TEST(ServeProtoTest, FrameRoundTripAndCleanEof)
{
    int sp[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp));

    const std::string payload = "the quick brown frame";
    std::string error;
    ASSERT_TRUE(sendFrame(sp[0], payload, error)) << error;

    std::string back;
    EXPECT_EQ(1, recvFrame(sp[1], back, error)) << error;
    EXPECT_EQ(payload, back);

    // Closing the writer mid-stream is a *clean* EOF before any byte
    // of the next frame — recvFrame reports 0, not an error.
    ::close(sp[0]);
    EXPECT_EQ(0, recvFrame(sp[1], back, error));
    ::close(sp[1]);
}

TEST(ServeProtoTest, CorruptPayloadRejectedByCrc)
{
    int sp[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp));

    const std::string payload = "bits on the wire";
    std::string error;
    ASSERT_TRUE(sendFrame(sp[0], payload, error)) << error;
    std::string frame = rawRead(sp[1], 8 + payload.size());
    ASSERT_EQ(8 + payload.size(), frame.size());
    ::close(sp[0]);
    ::close(sp[1]);

    // Flip one payload bit and replay the frame: CRC must catch it.
    frame[8] = static_cast<char>(frame[8] ^ 0x40);
    int sp2[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp2));
    rawWrite(sp2[0], frame);
    ::close(sp2[0]);
    std::string back;
    EXPECT_EQ(-1, recvFrame(sp2[1], back, error));
    EXPECT_FALSE(error.empty());
    ::close(sp2[1]);
}

TEST(ServeProtoTest, OversizedAndTruncatedFramesRejected)
{
    // A length header past kMaxServeFrameBytes means a corrupt peer.
    int sp[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp));
    std::string head(8, '\0');
    const std::uint32_t huge = kMaxServeFrameBytes + 1;
    std::memcpy(head.data(), &huge, sizeof huge);
    rawWrite(sp[0], head);
    ::close(sp[0]);
    std::string back, error;
    EXPECT_EQ(-1, recvFrame(sp[1], back, error));
    EXPECT_FALSE(error.empty());
    ::close(sp[1]);

    // EOF *inside* a frame is a truncation error, not a clean close.
    int sp2[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp2));
    ASSERT_TRUE(sendFrame(sp2[0], "whole frame", error)) << error;
    std::string frame = rawRead(sp2[1], 8 + 11);
    ::close(sp2[0]);
    ::close(sp2[1]);

    int sp3[2];
    ASSERT_EQ(0, ::socketpair(AF_UNIX, SOCK_STREAM, 0, sp3));
    rawWrite(sp3[0], frame.substr(0, 6));
    ::close(sp3[0]);
    error.clear();
    EXPECT_EQ(-1, recvFrame(sp3[1], back, error));
    EXPECT_FALSE(error.empty());
    ::close(sp3[1]);
}

TEST(ServeProtoTest, SpecCodecRoundTripsEveryField)
{
    SweepRequestSpec spec;
    spec.name = "fig7_sq_speedup";
    spec.configs = {"base", "perfect", "seg=4x16:nsc+ports=2"};
    spec.benchmarks = {"bzip", "gcc", "art"};
    spec.instructions = 123456;
    spec.warmup = 777;
    spec.seed = 42;
    spec.baseSeed = 9;
    spec.ffInsts = 250000;
    spec.jobs = 5;

    SerialWriter w;
    spec.encode(w);
    SerialReader r(w.buffer());
    SweepRequestSpec back = SweepRequestSpec::decode(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(spec.name, back.name);
    EXPECT_EQ(spec.configs, back.configs);
    EXPECT_EQ(spec.benchmarks, back.benchmarks);
    EXPECT_EQ(spec.instructions, back.instructions);
    EXPECT_EQ(spec.warmup, back.warmup);
    EXPECT_EQ(spec.seed, back.seed);
    EXPECT_EQ(spec.baseSeed, back.baseSeed);
    EXPECT_EQ(spec.ffInsts, back.ffInsts);
    EXPECT_EQ(spec.jobs, back.jobs);
}

TEST(ServeProtoTest, VersionSkewThrows)
{
    SerialWriter w;
    w.u32(kServeProtoVersion + 1);
    w.str("sweep");
    SerialReader r(w.buffer());
    EXPECT_THROW(SweepRequestSpec::decode(r), SerialError);
}

TEST(ServeProtoTest, DoneSummaryCodecRoundTrips)
{
    DoneSummary d;
    d.state = 1;
    d.cells = 12;
    d.poisoned = 2;
    d.jobs = 4;
    d.seconds = 1.5;
    d.warmHits = 3;
    d.warmMisses = 1;
    d.message = "12 cells, 2 poisoned";

    SerialWriter w;
    d.encode(w);
    SerialReader r(w.buffer());
    DoneSummary back = DoneSummary::decode(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(d.state, back.state);
    EXPECT_EQ(d.cells, back.cells);
    EXPECT_EQ(d.poisoned, back.poisoned);
    EXPECT_EQ(d.jobs, back.jobs);
    EXPECT_EQ(d.seconds, back.seconds);
    EXPECT_EQ(d.warmHits, back.warmHits);
    EXPECT_EQ(d.warmMisses, back.warmMisses);
    EXPECT_EQ(d.message, back.message);
}

// ========================================================= registry ==

TEST(ServeRegistryTest, AcceptsTheDocumentedVocabulary)
{
    const char *good[] = {
        "base",          "perfect",   "aggressive",
        "pair",          "scaled",    "all",
        "ports=4",       "size=64",   "seg=4x16",
        "seg=4x16:nsc",  "combined=48", "lb=8",
        "lb=0",          "in-order-search", "all+ports=2",
        "seg=8x8+pair",
    };
    for (const char *label : good) {
        std::string error;
        EXPECT_TRUE(validDesignLabel(label, error))
            << label << ": " << error;
    }
}

TEST(ServeRegistryTest, RejectsMalformedLabelsWithAnError)
{
    const char *bad[] = {
        "",       "bogus",   "ports=0", "ports=x", "ports=",
        "seg=4",  "seg=0x4", "seg=4x0", "lb=",     "size=-1",
        "base+",  "+base",   "base++perfect",
    };
    for (const char *label : bad) {
        std::string error;
        EXPECT_FALSE(validDesignLabel(label, error)) << label;
        EXPECT_FALSE(error.empty()) << label;
    }
}

TEST(ServeRegistryTest, Fig7LabelsMatchTheBatchConfigsBitExactly)
{
    // The guarantee the serve-smoke CI flavor leans on: submitting
    // base/perfect/aggressive/pair must reproduce the batch fig7
    // configs exactly, so daemon results are byte-comparable with the
    // bench binary's JSON.
    SweepRequestSpec spec;
    spec.instructions = 2000;
    spec.warmup = 200;
    spec.seed = 1;

    using Modifier = SimConfig (*)(SimConfig);
    const std::pair<const char *, Modifier> rows[] = {
        {"base", nullptr},
        {"perfect", &configs::withPerfectPredictor},
        {"aggressive", &configs::withAggressivePredictor},
        {"pair", &configs::withPairPredictor},
    };
    for (const auto &[label, modify] : rows) {
        SimConfig expected = configs::base("bzip");
        expected.instructions = spec.instructions;
        expected.warmup = spec.warmup;
        expected.seed = spec.seed;
        if (modify)
            expected = modify(expected);

        NamedConfig row = registryNamedConfig(spec, label);
        EXPECT_EQ(label, row.label);
        SimConfig got = row.make("bzip");

        SimResult a = Simulator(expected).run();
        SimResult b = Simulator(got).run();
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << label;
    }
}

// ======================================================= ckpt cache ==

/**
 * Run a short simulation that fast-forwards @p ffInsts and saves a
 * checkpoint at @p path; returns the saving config (whose
 * functionalFingerprint keys the cache).
 */
SimConfig
produceCheckpoint(const std::string &bench, std::uint64_t ffInsts,
                  std::uint64_t seed, const std::string &path)
{
    SimConfig cfg = configs::base(bench);
    cfg.instructions = 500;
    cfg.warmup = 100;
    cfg.seed = seed;
    cfg.ffInsts = ffInsts;
    cfg.saveCkptPath = path;
    Simulator(cfg).run();
    return cfg;
}

TEST(CkptCacheTest, MissThenInsertThenHitAccounting)
{
    const std::string dir = scratch("cache");
    const std::string src = scratch("warm.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("bzip", 3000, 1, src);
    const std::uint64_t fp = functionalFingerprint(cfg);

    CkptCache cache(dir, 64ull << 20);
    EXPECT_EQ("", cache.lookup(fp, 3000));

    std::string finalPath, error;
    ASSERT_TRUE(cache.insert(fp, 3000, src, finalPath, error))
        << error;
    EXPECT_TRUE(fs::exists(finalPath));
    EXPECT_FALSE(fs::exists(src)) << "source must be consumed";

    EXPECT_EQ(finalPath, cache.lookup(fp, 3000));
    // Same functional config, different fast-forward length: a
    // different warm boundary, so a distinct key.
    EXPECT_EQ("", cache.lookup(fp, 4000));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(2u, s.misses);
    EXPECT_EQ(1u, s.hits);
    EXPECT_EQ(1u, s.insertions);
    EXPECT_EQ(0u, s.evictions);
    EXPECT_EQ(0u, s.rejected);
    EXPECT_EQ(1u, s.entries);
    EXPECT_EQ(fs::file_size(finalPath), s.bytes);

    // The cached file is a loadable checkpoint, not just bytes.
    CheckpointInfo info = inspectCheckpoint(finalPath);
    EXPECT_TRUE(info.crcOk);
    EXPECT_EQ(fp, info.meta.fingerprint);
}

TEST(CkptCacheTest, RejectsMismatchedAndCorruptInserts)
{
    const std::string dir = scratch("cache");
    CkptCache cache(dir, 64ull << 20);
    std::string finalPath, error;

    // Fingerprint mismatch: the file's recorded fingerprint disagrees
    // with the key — adopting it would serve wrong restores.
    const std::string src1 = scratch("a.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("bzip", 2000, 1, src1);
    const std::uint64_t fp = functionalFingerprint(cfg);
    EXPECT_FALSE(cache.insert(fp + 1, 2000, src1, finalPath, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fs::exists(src1)) << "rejected source must be removed";

    // ffInsts mismatch against the recorded instCount.
    const std::string src2 = scratch("b.ckpt.tmp");
    produceCheckpoint("bzip", 2000, 1, src2);
    EXPECT_FALSE(cache.insert(fp, 9999, src2, finalPath, error));

    // Garbage bytes.
    const std::string src3 = scratch("c.ckpt.tmp");
    {
        std::ofstream out(src3, std::ios::binary);
        out << "not a checkpoint at all";
    }
    EXPECT_FALSE(cache.insert(fp, 2000, src3, finalPath, error));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(3u, s.rejected);
    EXPECT_EQ(0u, s.insertions);
    EXPECT_EQ(0u, s.entries);
    EXPECT_EQ(0u, s.bytes);
}

TEST(CkptCacheTest, EvictsLeastRecentlyUsedToFitTheByteBudget)
{
    const std::string srcA = scratch("a.ckpt.tmp");
    const std::string srcB = scratch("b.ckpt.tmp");
    SimConfig cfgA = produceCheckpoint("bzip", 2000, 1, srcA);
    SimConfig cfgB = produceCheckpoint("gcc", 2000, 1, srcB);
    const std::uint64_t fpA = functionalFingerprint(cfgA);
    const std::uint64_t fpB = functionalFingerprint(cfgB);
    ASSERT_NE(fpA, fpB);
    const std::uint64_t bytesA = fs::file_size(srcA);
    const std::uint64_t bytesB = fs::file_size(srcB);

    // Budget holds either alone but not both: inserting B must evict
    // A (the least recently used entry) and leave B resident.
    CkptCache cache(scratch("cache"), bytesA + bytesB - 1);
    std::string pathA, pathB, error;
    ASSERT_TRUE(cache.insert(fpA, 2000, srcA, pathA, error)) << error;
    ASSERT_TRUE(cache.insert(fpB, 2000, srcB, pathB, error)) << error;

    EXPECT_FALSE(fs::exists(pathA));
    EXPECT_TRUE(fs::exists(pathB));
    EXPECT_EQ("", cache.lookup(fpA, 2000));
    EXPECT_EQ(pathB, cache.lookup(fpB, 2000));

    CkptCacheStats s = cache.stats();
    EXPECT_EQ(2u, s.insertions);
    EXPECT_EQ(1u, s.evictions);
    EXPECT_EQ(1u, s.entries);
    EXPECT_EQ(bytesB, s.bytes);
    EXPECT_LE(s.bytes, s.byteBudget);

    // A file larger than the whole budget can never fit: rejected,
    // residents untouched.
    const std::string srcC = scratch("c.ckpt.tmp");
    produceCheckpoint("art", 2000, 1, srcC);
    CkptCache tiny(scratch("tiny"), 16);
    std::string pathC;
    EXPECT_FALSE(tiny.insert(functionalFingerprint(
                                 configs::base("art")),
                             2000, srcC, pathC, error));
    EXPECT_EQ(1u, tiny.stats().rejected);
}

TEST(CkptCacheTest, RestartReadoptsSurvivingEntries)
{
    const std::string dir = scratch("cache");
    const std::string src = scratch("warm.ckpt.tmp");
    SimConfig cfg = produceCheckpoint("mgrid", 2500, 1, src);
    const std::uint64_t fp = functionalFingerprint(cfg);

    std::string finalPath, error;
    {
        CkptCache cache(dir, 64ull << 20);
        ASSERT_TRUE(cache.insert(fp, 2500, src, finalPath, error))
            << error;
    }

    // Drop a junk file next to it; re-adoption must skip it.
    {
        std::ofstream out(dir + "/junk.ckpt", std::ios::binary);
        out << "torn";
    }

    CkptCache reborn(dir, 64ull << 20);
    EXPECT_EQ(1u, reborn.stats().entries);
    EXPECT_EQ(finalPath, reborn.lookup(fp, 2500));
    EXPECT_FALSE(fs::exists(dir + "/junk.ckpt"));
}

// =========================================================== daemon ==

/**
 * A running daemon on a JobPool worker, shut down (via the protocol,
 * like `lsqctl shutdown`) when the harness leaves scope — even when
 * an ASSERT bails out of the test body early.
 */
struct DaemonHarness
{
    ServeOptions opts;
    Daemon daemon;
    JobPool pool{1};

    explicit DaemonHarness(ServeOptions o)
        : opts(o), daemon(std::move(o))
    {
        pool.submit([this] { (void)daemon.run(); });
        waitReady();
    }

    ~DaemonHarness()
    {
        ServeClient client(opts.socketPath);
        std::string error;
        (void)client.shutdown(error);
        pool.wait();
    }

    void waitReady()
    {
        for (int i = 0; i < 1000; ++i) {
            ServeClient client(opts.socketPath);
            std::string json, error;
            if (client.status(0, json, error))
                return;
            ::usleep(10 * 1000);
        }
        FAIL() << "daemon never came up on " << opts.socketPath;
    }
};

ServeOptions
testOptions(const std::string &tag)
{
    ServeOptions opts;
    opts.socketPath = scratch(tag + ".sock");
    opts.cacheDir = scratch(tag + ".cache");
    opts.clientWorkers = 4;
    opts.isolation = IsolationMode::Thread;
    fs::remove(opts.socketPath);
    return opts;
}

/** Collect a full record stream after submit()/attach(). */
struct Stream
{
    std::vector<std::pair<std::uint64_t, std::string>> records;
    DoneSummary done;

    bool drain(ServeClient &client, std::string &error)
    {
        return client.stream(
            [this](std::uint64_t index, const std::string &payload) {
                records.emplace_back(index, payload);
            },
            done, error);
    }
};

TEST(ServeDaemonTest, StreamedResultsAreBitIdenticalToADirectSweep)
{
    DaemonHarness harness(testOptions("cold"));

    SweepRequestSpec spec;
    spec.name = "cold_grid";
    spec.configs = {"base", "perfect"};
    spec.benchmarks = {"bzip", "gcc"};
    spec.instructions = 2000;
    spec.warmup = 200;
    spec.baseSeed = 7;
    spec.jobs = 2;

    ServeClient client(harness.opts.socketPath);
    std::uint64_t id = 0;
    std::string error;
    ASSERT_TRUE(client.submit(spec, id, error)) << error;
    EXPECT_GE(id, 1u);

    Stream stream;
    ASSERT_TRUE(stream.drain(client, error)) << error;
    EXPECT_EQ(0, stream.done.state);
    EXPECT_EQ(4u, stream.done.cells);
    EXPECT_EQ(0u, stream.done.poisoned);

    // Indices are dense from zero — that's what makes Attach's
    // fromIndex a resume cursor.
    for (std::size_t i = 0; i < stream.records.size(); ++i)
        EXPECT_EQ(i, stream.records[i].first);

    // The stream replays through the journal machinery…
    JournalAccumulator acc;
    for (const auto &[index, payload] : stream.records)
        ASSERT_TRUE(acc.add(payload, error)) << error;
    JournalContents contents = acc.contents();
    EXPECT_EQ(spec.name, contents.name);
    EXPECT_EQ(2u, contents.rows);
    EXPECT_EQ(2u, contents.cols);
    ASSERT_EQ(4u, contents.cells.size());

    // …and a raw tee of the frames is a valid journal file, exactly
    // what `lsqctl --journal` writes.
    const std::string teePath = scratch("tee.journal");
    {
        std::ofstream out(teePath, std::ios::binary);
        out.write(kJournalMagic, sizeof kJournalMagic);
        for (const auto &[index, payload] : stream.records) {
            std::string frame = frameJournalRecord(payload);
            out.write(frame.data(),
                      static_cast<std::streamsize>(frame.size()));
        }
    }
    JournalContents teed;
    ASSERT_TRUE(readJournal(teePath, teed, error)) << error;
    EXPECT_EQ(4u, teed.cells.size());
    EXPECT_FALSE(teed.truncatedTail);

    // Bit-identity against the same grid run directly in-process.
    std::vector<NamedConfig> rows;
    for (const std::string &label : spec.configs)
        rows.push_back(registryNamedConfig(spec, label));
    SweepOptions so;
    so.name = spec.name;
    so.baseSeed = spec.baseSeed;
    so.jobs = 2;
    so.isolation = IsolationMode::Thread;
    Sweep sweep(rows, spec.benchmarks, so);
    sweep.setJobFn(runSimulationJob);
    SweepOutcome direct = sweep.run();

    SweepOutcome served = outcomeFromJournal(
        contents, stream.done.jobs, stream.done.seconds);
    ASSERT_EQ(direct.grid.size(), served.grid.size());
    for (std::size_t r = 0; r < direct.grid.size(); ++r) {
        ASSERT_EQ(direct.grid[r].size(), served.grid[r].size());
        for (std::size_t c = 0; c < direct.grid[r].size(); ++c) {
            const SweepCell &want = direct.grid[r][c];
            const SweepCell &got = served.grid[r][c];
            EXPECT_EQ(JobStatus::Ok, got.status);
            EXPECT_EQ(want.configLabel, got.configLabel);
            EXPECT_EQ(want.benchmark, got.benchmark);
            EXPECT_EQ(fingerprint(want.result),
                      fingerprint(got.result));
        }
    }
    EXPECT_EQ(0u, served.poisonedCells);

    // Attach replays the whole stream, or any suffix of it.
    ServeClient replay(harness.opts.socketPath);
    ASSERT_TRUE(replay.attach(id, 0, error)) << error;
    Stream full;
    ASSERT_TRUE(full.drain(replay, error)) << error;
    EXPECT_EQ(stream.records, full.records);
    EXPECT_EQ(0, full.done.state);

    const std::uint64_t last = stream.records.size() - 1;
    ServeClient tail(harness.opts.socketPath);
    ASSERT_TRUE(tail.attach(id, last, error)) << error;
    Stream suffix;
    ASSERT_TRUE(suffix.drain(tail, error)) << error;
    ASSERT_EQ(1u, suffix.records.size());
    EXPECT_EQ(stream.records.back(), suffix.records.front());

    // Unknown ids are a protocol error, not a hang.
    ServeClient bogus(harness.opts.socketPath);
    EXPECT_FALSE(bogus.attach(9999, 0, error));
    EXPECT_NE(std::string::npos, error.find("unknown request"));
}

TEST(ServeDaemonTest, WarmResubmitHitsTheCheckpointCache)
{
    DaemonHarness harness(testOptions("warm"));

    SweepRequestSpec spec;
    spec.name = "warm_grid";
    spec.configs = {"base"};
    spec.benchmarks = {"bzip"};
    spec.instructions = 1000;
    spec.warmup = 200;
    spec.ffInsts = 2000;

    auto runOnce = [&](Stream &stream) {
        ServeClient client(harness.opts.socketPath);
        std::uint64_t id = 0;
        std::string error;
        ASSERT_TRUE(client.submit(spec, id, error)) << error;
        ASSERT_TRUE(stream.drain(client, error)) << error;
        ASSERT_EQ(0, stream.done.state);
        ASSERT_EQ(0u, stream.done.poisoned);
    };

    Stream first;
    runOnce(first);
    EXPECT_EQ(0u, first.done.warmHits);
    EXPECT_EQ(1u, first.done.warmMisses);

    Stream second;
    runOnce(second);
    EXPECT_EQ(1u, second.done.warmHits);
    EXPECT_EQ(0u, second.done.warmMisses);

    // Restoring from the cached checkpoint is bit-identical to the
    // fast-forward it replaced.
    ASSERT_EQ(first.records.size(), second.records.size());
    JournalAccumulator a, b;
    std::string error;
    for (const auto &[i, p] : first.records)
        ASSERT_TRUE(a.add(p, error)) << error;
    for (const auto &[i, p] : second.records)
        ASSERT_TRUE(b.add(p, error)) << error;
    JournalContents ca = a.contents(), cb = b.contents();
    ASSERT_EQ(ca.cells.size(), cb.cells.size());
    for (std::size_t i = 0; i < ca.cells.size(); ++i) {
        ASSERT_TRUE(ca.cells[i].hasResult);
        ASSERT_TRUE(cb.cells[i].hasResult);
        EXPECT_EQ(fingerprint(ca.cells[i].result),
                  fingerprint(cb.cells[i].result));
    }

    CkptCacheStats s = harness.daemon.cache().stats();
    EXPECT_EQ(1u, s.hits);
    EXPECT_EQ(1u, s.misses);
    EXPECT_EQ(1u, s.insertions);
    EXPECT_EQ(1u, s.entries);

    // The stats JSON the daemon serves carries the same counters.
    ServeClient client(harness.opts.socketPath);
    std::string json;
    ASSERT_TRUE(client.stats(json, error)) << error;
    EXPECT_NE(std::string::npos, json.find("\"hits\": 1"));
    EXPECT_NE(std::string::npos, json.find("\"insertions\": 1"));
}

TEST(ServeDaemonTest, CancellingAQueuedRequestIsDeterministic)
{
    DaemonHarness harness(testOptions("cancel"));
    std::string error;

    // Request A occupies the single executor long enough for the
    // cancel round-trip (microseconds on a local socket) to land
    // while B is still queued behind it.
    SweepRequestSpec slow;
    slow.name = "slow";
    slow.configs = {"base", "perfect"};
    slow.benchmarks = {"bzip"};
    slow.instructions = 150000;
    slow.warmup = 1000;

    ServeClient clientA(harness.opts.socketPath);
    std::uint64_t idA = 0;
    ASSERT_TRUE(clientA.submit(slow, idA, error)) << error;
    clientA.close(); // abandon the stream; the daemon carries on

    SweepRequestSpec queued;
    queued.name = "queued";
    queued.configs = {"base"};
    queued.benchmarks = {"bzip", "gcc"};
    queued.instructions = 50000;
    queued.warmup = 1000;

    ServeClient clientB(harness.opts.socketPath);
    std::uint64_t idB = 0;
    ASSERT_TRUE(clientB.submit(queued, idB, error)) << error;
    clientB.close();

    ServeClient killer(harness.opts.socketPath);
    ASSERT_TRUE(killer.cancel(idB, error)) << error;
    EXPECT_FALSE(killer.cancel(4242, error));
    EXPECT_NE(std::string::npos, error.find("unknown request"));

    // B terminates Cancelled; its stream still ends in a Done frame
    // so a watching client is never left hanging.
    ServeClient watchB(harness.opts.socketPath);
    ASSERT_TRUE(watchB.attach(idB, 0, error)) << error;
    Stream streamB;
    ASSERT_TRUE(streamB.drain(watchB, error)) << error;
    EXPECT_EQ(1, streamB.done.state);

    // A is unaffected: drain it to completion.
    ServeClient watchA(harness.opts.socketPath);
    ASSERT_TRUE(watchA.attach(idA, 0, error)) << error;
    Stream streamA;
    ASSERT_TRUE(streamA.drain(watchA, error)) << error;
    EXPECT_EQ(0, streamA.done.state);
    EXPECT_EQ(2u, streamA.done.cells);

    // Status reflects both verdicts.
    ServeClient status(harness.opts.socketPath);
    std::string json;
    ASSERT_TRUE(status.status(0, json, error)) << error;
    EXPECT_NE(std::string::npos, json.find("\"cancelled\""));
    EXPECT_NE(std::string::npos, json.find("\"done\""));
}

TEST(ServeDaemonTest, RejectsInvalidSubmissions)
{
    DaemonHarness harness(testOptions("reject"));
    std::string error;
    std::uint64_t id = 0;

    SweepRequestSpec spec;
    spec.configs = {"bogus-label"};
    spec.benchmarks = {"bzip"};
    spec.instructions = 1000;
    ServeClient c1(harness.opts.socketPath);
    EXPECT_FALSE(c1.submit(spec, id, error));
    EXPECT_FALSE(error.empty());

    spec.configs = {"base"};
    spec.benchmarks = {"no-such-workload"};
    ServeClient c2(harness.opts.socketPath);
    EXPECT_FALSE(c2.submit(spec, id, error));

    spec.benchmarks = {};
    ServeClient c3(harness.opts.socketPath);
    EXPECT_FALSE(c3.submit(spec, id, error));
}

// ================================================= outcome rebuild ==

TEST(ServeClientTest, OutcomeFromJournalFlagsMissingCells)
{
    JournalAccumulator acc;
    std::string error;
    ASSERT_TRUE(acc.add(
        encodeSweepBeginRecord("partial", {"base"}, {"bzip", "gcc"}),
        error))
        << error;

    JournalCell cell;
    cell.row = 0;
    cell.col = 0;
    cell.status = JobStatus::Failed;
    cell.attempts = 2;
    cell.error = "boom";
    ASSERT_TRUE(acc.add(encodeCellRecord(cell), error)) << error;

    SweepOutcome out = outcomeFromJournal(acc.contents(), 3, 1.25);
    ASSERT_EQ(1u, out.grid.size());
    ASSERT_EQ(2u, out.grid[0].size());
    EXPECT_EQ(JobStatus::Failed, out.grid[0][0].status);
    EXPECT_EQ("boom", out.grid[0][0].error);
    EXPECT_EQ(JobStatus::Failed, out.grid[0][1].status);
    EXPECT_NE(std::string::npos,
              out.grid[0][1].error.find("missing from stream"));
    EXPECT_EQ(2u, out.poisonedCells);
    EXPECT_EQ(3u, out.jobs);
    EXPECT_EQ(1.25, out.seconds);
}

// =========================================================== config ==

TEST(ServeOptionsTest, ParseServeArgsCoversEveryFlag)
{
    ServeOptions opts;
    std::string error;
    ASSERT_TRUE(parseServeArgs(
        {"--socket", "/tmp/x.sock", "--cache-dir", "/tmp/x.cache",
         "--cache-mb", "8", "--clients", "2", "--isolation",
         "thread"},
        opts, error))
        << error;
    EXPECT_EQ("/tmp/x.sock", opts.socketPath);
    EXPECT_EQ("/tmp/x.cache", opts.cacheDir);
    EXPECT_EQ(8ull << 20, opts.cacheBudgetBytes);
    EXPECT_EQ(2u, opts.clientWorkers);
    EXPECT_EQ(IsolationMode::Thread, opts.isolation);

    ServeOptions bad;
    EXPECT_FALSE(parseServeArgs({"--cache-mb", "lots"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--isolation", "yolo"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--frobnicate"}, bad, error));
    EXPECT_FALSE(parseServeArgs({"--socket"}, bad, error));
}

} // namespace
} // namespace lsqscale
