/**
 * @file
 * Tests for the lsqsim command-line parsing and JSON output.
 */

#include <gtest/gtest.h>

#include "sim/cli.hh"

using namespace lsqscale;

namespace {

CliOptions
parseOk(const std::vector<std::string> &args)
{
    CliOptions opts;
    std::string err = parseCli(args, opts);
    EXPECT_EQ(err, "");
    return opts;
}

std::string
parseErr(const std::vector<std::string> &args)
{
    CliOptions opts;
    return parseCli(args, opts);
}

} // namespace

TEST(Cli, DefaultsAreBaseConfig)
{
    CliOptions opts = parseOk({});
    EXPECT_EQ(opts.config.benchmark, "bzip");
    EXPECT_EQ(opts.config.lsq.searchPorts, 2u);
    EXPECT_EQ(opts.config.lsq.numSegments, 1u);
    EXPECT_FALSE(opts.showHelp);
    EXPECT_FALSE(opts.jsonOutput);
}

TEST(Cli, WorkloadOptions)
{
    CliOptions opts = parseOk({"--benchmark", "mgrid", "--insts",
                               "12345", "--warmup", "100", "--seed",
                               "9"});
    EXPECT_EQ(opts.config.benchmark, "mgrid");
    EXPECT_EQ(opts.config.instructions, 12345u);
    EXPECT_EQ(opts.config.warmup, 100u);
    EXPECT_EQ(opts.config.seed, 9u);
}

TEST(Cli, UnknownBenchmarkRejected)
{
    EXPECT_NE(parseErr({"--benchmark", "doom"}), "");
}

TEST(Cli, LsqShapeOptions)
{
    CliOptions opts = parseOk({"--ports", "1", "--lq", "28", "--sq",
                               "28", "--segments", "4", "--alloc",
                               "no-self-circular"});
    EXPECT_EQ(opts.config.lsq.searchPorts, 1u);
    EXPECT_EQ(opts.config.lsq.lqEntries, 28u);
    EXPECT_EQ(opts.config.lsq.numSegments, 4u);
    EXPECT_EQ(opts.config.lsq.allocPolicy,
              SegAllocPolicy::NoSelfCircular);
}

TEST(Cli, PredictorKinds)
{
    EXPECT_EQ(parseOk({"--predictor", "pair"}).config.lsq.sqPolicy,
              SqSearchPolicy::Pair);
    EXPECT_EQ(parseOk({"--predictor", "perfect"}).config.lsq.sqPolicy,
              SqSearchPolicy::Perfect);
    CliOptions agg = parseOk({"--predictor", "aggressive"});
    EXPECT_TRUE(agg.config.core.storeSet.aliasFree);
    CliOptions conv = parseOk({"--predictor", "pair", "--predictor",
                               "conventional"});
    EXPECT_EQ(conv.config.lsq.sqPolicy, SqSearchPolicy::Always);
    EXPECT_FALSE(conv.config.lsq.checkViolationsAtCommit);
    EXPECT_NE(parseErr({"--predictor", "psychic"}), "");
}

TEST(Cli, LoadBufferOptions)
{
    CliOptions lb = parseOk({"--load-buffer", "4"});
    EXPECT_EQ(lb.config.lsq.loadCheck, LoadCheckPolicy::LoadBuffer);
    EXPECT_EQ(lb.config.lsq.loadBufferEntries, 4u);
    CliOptions zero = parseOk({"--load-buffer", "0"});
    EXPECT_EQ(zero.config.lsq.loadCheck, LoadCheckPolicy::InOrder);
    CliOptions search = parseOk({"--in-order-search"});
    EXPECT_EQ(search.config.lsq.loadCheck,
              LoadCheckPolicy::InOrderAlwaysSearch);
}

TEST(Cli, CompositeFlags)
{
    CliOptions all = parseOk({"--all-techniques"});
    EXPECT_EQ(all.config.lsq.searchPorts, 1u);
    EXPECT_EQ(all.config.lsq.numSegments, 4u);
    EXPECT_EQ(all.config.lsq.sqPolicy, SqSearchPolicy::Pair);

    CliOptions scaled = parseOk({"--scaled"});
    EXPECT_EQ(scaled.config.core.issueWidth, 12u);
    EXPECT_EQ(scaled.config.memory.l1d.hitLatency, 3u);
}

TEST(Cli, ModeFlags)
{
    EXPECT_TRUE(parseOk({"--help"}).showHelp);
    EXPECT_TRUE(parseOk({"--list-benchmarks"}).listBenchmarks);
    EXPECT_TRUE(parseOk({"--json"}).jsonOutput);
    EXPECT_TRUE(parseOk({"--dump-stats"}).dumpStats);
    CliOptions rec = parseOk({"--record", "/tmp/x.trace",
                              "--record-insts", "5000"});
    EXPECT_EQ(rec.recordPath, "/tmp/x.trace");
    EXPECT_EQ(rec.recordCount, 5000u);
}

TEST(Cli, InvalidationRate)
{
    CliOptions opts = parseOk({"--invalidations", "2.5"});
    EXPECT_DOUBLE_EQ(opts.config.core.invalidationsPerKCycle, 2.5);
    EXPECT_NE(parseErr({"--invalidations", "-1"}), "");
    EXPECT_NE(parseErr({"--invalidations", "abc"}), "");
}

TEST(Cli, MissingValuesAreErrors)
{
    EXPECT_NE(parseErr({"--benchmark"}), "");
    EXPECT_NE(parseErr({"--insts"}), "");
    EXPECT_NE(parseErr({"--insts", "zero"}), "");
    EXPECT_NE(parseErr({"--insts", "0"}), "");
    EXPECT_NE(parseErr({"--ports", "0"}), "");
    EXPECT_NE(parseErr({"--alloc", "sideways"}), "");
}

TEST(Cli, UnknownOptionIsError)
{
    EXPECT_NE(parseErr({"--frobnicate"}), "");
}

TEST(Cli, JobsOption)
{
    EXPECT_EQ(parseOk({}).jobs, 0u);
    EXPECT_EQ(parseOk({"--jobs", "8"}).jobs, 8u);
    EXPECT_NE(parseErr({"--jobs"}), "");
    EXPECT_NE(parseErr({"--jobs", "0"}), "");
    EXPECT_NE(parseErr({"--jobs", "many"}), "");
}

TEST(Cli, UsageMentionsEveryOption)
{
    std::string u = cliUsage();
    for (const char *flag :
         {"--benchmark", "--trace", "--insts", "--ports", "--segments",
          "--predictor", "--load-buffer", "--all-techniques",
          "--scaled", "--json", "--record", "--invalidations",
          "--jobs"})
        EXPECT_NE(u.find(flag), std::string::npos) << flag;
}

TEST(Cli, JsonOutputIsWellFormedish)
{
    SimConfig cfg = configs::base("bzip");
    cfg.instructions = 3000;
    cfg.warmup = 500;
    SimResult r = Simulator(cfg).run();
    std::string json = resultToJson(r, cfg);
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"ipc\":"), std::string::npos);
    EXPECT_NE(json.find("\"counters\":"), std::string::npos);
    EXPECT_NE(json.find("\"core.committed\":"), std::string::npos);
    // Balanced braces.
    int depth = 0;
    for (char c : json) {
        if (c == '{')
            ++depth;
        if (c == '}')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
}

TEST(Cli, RunCliHelpAndList)
{
    CliOptions help;
    help.showHelp = true;
    EXPECT_EQ(runCli(help), 0);
    CliOptions list;
    list.listBenchmarks = true;
    EXPECT_EQ(runCli(list), 0);
}

TEST(Cli, CombinedQueueFlag)
{
    CliOptions opts = parseOk({"--combined", "--segments", "4"});
    EXPECT_TRUE(opts.config.lsq.combinedQueue);
    EXPECT_EQ(opts.config.lsq.numSegments, 4u);
}
