/**
 * @file
 * Tests for the parallel sweep harness (src/harness/).
 *
 * The load-bearing property is the determinism contract from
 * docs/HARNESS.md: a parallel sweep must be bit-identical to a serial
 * sweep and to the historical serial runner loop. The rest covers the
 * failure semantics (retry with backoff, cooperative timeout,
 * poisoned-cell reporting) and the sink API. Under -DLSQ_CHECKER=ON
 * every simulation below also shadow-executes against the ordering
 * oracle on pool workers, which is exactly the "checker under the
 * pool" configuration the TSan preset validates.
 */

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "harness/job_pool.hh"
#include "harness/journal.hh"
#include "harness/sink.hh"
#include "harness/sweep.hh"
#include "inject/inject.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

/** Small, fast design points used throughout. */
SimConfig
tinyConfig(const std::string &bench)
{
    SimConfig cfg = configs::base(bench);
    cfg.instructions = 2000;
    cfg.warmup = 200;
    return cfg;
}

std::vector<NamedConfig>
threeDesignPoints()
{
    return {
        {"base", [](const std::string &b) { return tinyConfig(b); }},
        {"perfect",
         [](const std::string &b) {
             return configs::withPerfectPredictor(tinyConfig(b));
         }},
        {"pair",
         [](const std::string &b) {
             return configs::withPairPredictor(tinyConfig(b));
         }},
    };
}

const std::vector<std::string> kBenches = {"bzip", "gcc", "art",
                                           "mgrid"};

/** Canonical serialization of a result for bit-identity comparison. */
std::string
fingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << r.benchmark << ":" << r.cycles << ":" << r.committed << "\n"
       << r.stats.dump();
    return os.str();
}

/** A dummy result for fabricated (non-simulating) jobs. */
SimResult
dummyResult(const std::string &bench)
{
    SimResult r;
    r.benchmark = bench;
    r.cycles = 100;
    r.committed = 250;
    return r;
}

// ------------------------------------------------------- JobPool -----

TEST(JobPoolTest, RunsEverySubmittedJob)
{
    JobPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST(JobPoolTest, JobsRunConcurrently)
{
    // Four jobs that each block until all four have started can only
    // finish if the pool really runs them on distinct threads.
    JobPool pool(4);
    std::mutex mu;
    std::condition_variable cv;
    int started = 0;
    for (int i = 0; i < 4; ++i) {
        pool.submit([&] {
            std::unique_lock<std::mutex> lock(mu);
            ++started;
            cv.notify_all();
            cv.wait(lock, [&] { return started == 4; });
        });
    }
    pool.wait();
    EXPECT_EQ(started, 4);
}

TEST(JobPoolTest, WaitIsReusableAcrossBatches)
{
    JobPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

// ------------------------------------------------- determinism -------

TEST(SweepTest, ParallelBitIdenticalToSerialAndHistoricalLoop)
{
    auto cfgs = threeDesignPoints();

    ExperimentRunner serialRunner(kBenches);
    serialRunner.setJobs(1);
    auto serial = serialRunner.runAll(cfgs);

    ExperimentRunner parallelRunner(kBenches);
    parallelRunner.setJobs(4);
    auto parallel = parallelRunner.runAll(cfgs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        ASSERT_EQ(serial[r].size(), parallel[r].size());
        for (std::size_t c = 0; c < serial[r].size(); ++c)
            EXPECT_EQ(fingerprint(serial[r][c]),
                      fingerprint(parallel[r][c]))
                << cfgs[r].label << "/" << kBenches[c];
    }

    // And both match the pre-harness serial loop exactly.
    for (std::size_t r = 0; r < cfgs.size(); ++r) {
        for (std::size_t c = 0; c < kBenches.size(); ++c) {
            Simulator sim(cfgs[r].make(kBenches[c]));
            EXPECT_EQ(fingerprint(sim.run()),
                      fingerprint(parallel[r][c]))
                << cfgs[r].label << "/" << kBenches[c];
        }
    }
}

TEST(SweepTest, JobSeedIsPureInCoordinates)
{
    std::uint64_t s00 = Sweep::jobSeed(1, 0, 0);
    EXPECT_EQ(s00, Sweep::jobSeed(1, 0, 0));
    EXPECT_NE(s00, Sweep::jobSeed(1, 0, 1));
    EXPECT_NE(s00, Sweep::jobSeed(1, 1, 0));
    EXPECT_NE(s00, Sweep::jobSeed(2, 0, 0));
    EXPECT_NE(Sweep::jobSeed(1, 0, 1), Sweep::jobSeed(1, 1, 0));
}

TEST(SweepTest, JobSeedDerivationIsPinned)
{
    // Exact values of the documented derivation (docs/HARNESS.md):
    //   jobSeed(base, row, col) =
    //     mix(mix(base + 0x9e3779b97f4a7c15 * (row + 1))
    //             + 0xbf58476d1ce4e5b9 * (col + 1))
    // with Rng::mix the zero-guarded splitmix64 finalizer. Golden
    // JSONs, recorded sweep CSVs, and checkpoint provenance all embed
    // these seeds: changing the derivation invalidates every recorded
    // artifact, so it must never change silently.
    EXPECT_EQ(Sweep::jobSeed(0, 0, 0), 8882014700738686411ULL);
    EXPECT_EQ(Sweep::jobSeed(0, 0, 1), 3055597201337537046ULL);
    EXPECT_EQ(Sweep::jobSeed(0, 1, 0), 759402495750001892ULL);
    EXPECT_EQ(Sweep::jobSeed(42, 0, 0), 13514425966345425732ULL);
    EXPECT_EQ(Sweep::jobSeed(42, 2, 3), 15584810229137078266ULL);
    EXPECT_EQ(Sweep::jobSeed(0xdeadbeef, 7, 11),
              13380929626409549622ULL);
}

TEST(SweepTest, CellSeedsIndependentOfWorkerCount)
{
    auto collectSeeds = [](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        opts.baseSeed = 42;
        Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                    {"bzip", "gcc", "art"}, opts);
        sweep.setJobFn([](const SimConfig &cfg, const JobContext &ctx) {
            SimResult r = dummyResult(cfg.benchmark);
            r.cycles = ctx.seed(); // smuggle the seed out
            return r;
        });
        std::vector<std::uint64_t> seeds;
        for (const auto &row : sweep.run().grid)
            for (const auto &cell : row) {
                EXPECT_EQ(cell.seed,
                          Sweep::jobSeed(42, cell.row, cell.col));
                EXPECT_EQ(cell.seed, cell.result.cycles);
                seeds.push_back(cell.seed);
            }
        return seeds;
    };
    EXPECT_EQ(collectSeeds(1), collectSeeds(4));
}

TEST(SweepTest, ArmedFaultForcesSerialThreadModeSweep)
{
    // The armed fault's measurement anchor and pending flag are
    // process-global: thread-mode workers sharing them would fire the
    // fault in an arbitrary cell at a wrong cycle, so the sweep must
    // drop to one job (process isolation keeps its parallelism — each
    // child owns a private copy).
    inject::FaultSpec spec;
    ASSERT_TRUE(
        inject::parseFaultSpec("corrupt-pred:1:1000000000", spec));
    inject::armFault(spec);

    SweepOptions opts;
    opts.jobs = 4;
    opts.isolation = IsolationMode::Thread;
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        return dummyResult(cfg.benchmark);
    });
    SweepOutcome out = sweep.run();
    inject::disarmFault();

    EXPECT_EQ(out.jobs, 1u);
    EXPECT_EQ(out.poisonedCells, 0u);
}

// ---------------------------------------------- failure semantics ----

TEST(SweepTest, RetriesAfterInjectedFailure)
{
    SweepOptions opts;
    opts.jobs = 4;
    opts.maxAttempts = 3;
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"flaky", tinyConfig}}, {"bzip", "gcc"}, opts);

    // The bzip cell fails on its first two attempts, then succeeds.
    std::atomic<unsigned> bzipTries{0};
    sweep.setJobFn(
        [&bzipTries](const SimConfig &cfg, const JobContext &ctx) {
            if (cfg.benchmark == "bzip") {
                ++bzipTries;
                if (ctx.attempt() < 2)
                    throw std::runtime_error("injected flake");
            }
            return dummyResult(cfg.benchmark);
        });

    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 0u);
    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(bzipTries.load(), 3u);
    EXPECT_EQ(out.grid[0][0].attempts, 3u);
    EXPECT_EQ(out.grid[0][0].status, JobStatus::Ok);
    EXPECT_EQ(out.grid[0][1].attempts, 1u);
}

TEST(SweepTest, PoisonedCellDoesNotKillTheSweep)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"cursed", tinyConfig}}, {"bzip", "gcc", "art"}, opts);

    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        if (cfg.benchmark == "gcc")
            throw std::runtime_error("injected permanent failure");
        return dummyResult(cfg.benchmark);
    });

    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 1u);
    EXPECT_EQ(out.exitCode(), 1);
    EXPECT_NE(out.summary().find("1 poisoned"), std::string::npos);

    const SweepCell &bad = out.grid[0][1];
    EXPECT_EQ(bad.status, JobStatus::Failed);
    EXPECT_TRUE(bad.poisoned());
    EXPECT_EQ(bad.attempts, 2u);
    EXPECT_EQ(bad.error, "injected permanent failure");
    EXPECT_EQ(bad.result.cycles, 0u);       // zeroed, ipc() == 0
    EXPECT_EQ(bad.result.benchmark, "gcc"); // grid stays rectangular

    EXPECT_EQ(out.grid[0][0].status, JobStatus::Ok);
    EXPECT_EQ(out.grid[0][2].status, JobStatus::Ok);
}

TEST(SweepTest, CooperativeTimeoutCancelsTheCell)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.timeout = std::chrono::milliseconds(30);
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"slow", tinyConfig}}, {"bzip", "gcc"}, opts);

    sweep.setJobFn([](const SimConfig &cfg, const JobContext &ctx) {
        if (cfg.benchmark == "gcc") {
            // A cooperative job polls expired() and bails out.
            while (!ctx.expired())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            throw std::runtime_error("budget exhausted");
        }
        return dummyResult(cfg.benchmark);
    });

    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 1u);
    EXPECT_EQ(out.exitCode(), 1);
    EXPECT_EQ(out.grid[0][1].status, JobStatus::TimedOut);
    EXPECT_EQ(out.grid[0][1].attempts, 2u);
    EXPECT_EQ(out.grid[0][0].status, JobStatus::Ok);
}

TEST(SweepTest, OverBudgetCompletionClassifiedAsTimeout)
{
    // A job that cannot poll still gets flagged when it comes back
    // after the deadline (best-effort detection).
    SweepOptions opts;
    opts.jobs = 1;
    opts.timeout = std::chrono::milliseconds(5);
    Sweep sweep({{"late", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return dummyResult(cfg.benchmark);
    });
    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.grid[0][0].status, JobStatus::TimedOut);
    EXPECT_EQ(out.exitCode(), 1);
}

// ------------------------------------------------------- sinks -------

class RecordingSink : public ResultSink
{
  public:
    void sweepBegin(const SweepOutcome &) override { ++begins; }
    void jobStarted(const SweepCell &) override { ++starts; }
    void cellDone(const SweepCell &cell) override
    {
        ++dones;
        if (cell.poisoned())
            ++poisoned;
    }
    void sweepEnd(const SweepOutcome &) override { ++ends; }

    int begins = 0, starts = 0, dones = 0, ends = 0, poisoned = 0;
};

TEST(SinkTest, SinksSeeEveryCellExactlyOnce)
{
    SweepOptions opts;
    opts.jobs = 4;
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc", "art"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        if (cfg.benchmark == "art")
            throw std::runtime_error("boom");
        return dummyResult(cfg.benchmark);
    });
    RecordingSink sink;
    sweep.addSink(&sink);
    SweepOutcome out = sweep.run();
    EXPECT_EQ(sink.begins, 1);
    EXPECT_EQ(sink.ends, 1);
    EXPECT_EQ(sink.starts, 6);
    EXPECT_EQ(sink.dones, 6);
    EXPECT_EQ(sink.poisoned, 2);
    EXPECT_EQ(out.poisonedCells, 2u);
}

TEST(SinkTest, CsvRenderIsStableOrderIpcGrid)
{
    SweepOptions opts;
    opts.jobs = 3;
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        return dummyResult(cfg.benchmark); // ipc = 250/100 = 2.5
    });
    std::string csv = CsvFileSink::render(sweep.run());
    EXPECT_EQ(csv,
              "benchmark,a,b\n"
              "bzip,2.500000,2.500000\n"
              "gcc,2.500000,2.500000\n");
}

TEST(SinkTest, JsonSinkEmitsWellFormedDocument)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.name = "unit_sweep";
    Sweep sweep({{"a", tinyConfig}}, {"bzip", "gcc"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        if (cfg.benchmark == "gcc")
            throw std::runtime_error("json \"escape\" check\n");
        return dummyResult(cfg.benchmark);
    });
    std::string path =
        testing::TempDir() + "/BENCH_harness_unit.json";
    JsonFileSink sink(path, {{"purpose", "unit-test"}});
    sweep.addSink(&sink);
    sweep.run();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "sink did not write " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string doc = ss.str();

    // Structure: balanced braces/brackets outside strings, one cell
    // record per grid cell, schema + metadata present, escapes legal.
    EXPECT_NE(doc.find("\"schema\": \"lsqscale-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"unit_sweep\""), std::string::npos);
    EXPECT_NE(doc.find("\"purpose\": \"unit-test\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(doc.find("\"ipc\": 2.500000"), std::string::npos);
    EXPECT_NE(doc.find("json \\\"escape\\\" check\\n"),
              std::string::npos);
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        char ch = doc[i];
        if (inString) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                inString = false;
            continue;
        }
        if (ch == '"')
            inString = true;
        else if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);
    std::remove(path.c_str());
}

// ------------------------------------------- nonzero exit summary ----

TEST(SweepDeathTest, NoteSweepFailuresForcesNonzeroExit)
{
    // The ExperimentRunner path: benches end with `return 0`, so
    // poisoned cells arm an atexit hook that rewrites the process
    // exit status. Death test: the child exits 1, not 0.
    EXPECT_EXIT(
        {
            noteSweepFailures(2);
            std::exit(0);
        },
        testing::ExitedWithCode(1), "2 poisoned cell");
}

// -------------------------------------------- process isolation ------

/**
 * Forking from a process whose threads TSan instruments is outside
 * TSan's supported model (the child inherits shadow state from one
 * thread only), so the process-isolation tests run everywhere except
 * the tsan CI flavor. Thread-mode sweeps stay fully TSan-checked.
 */
constexpr bool kTsanBuild =
#if defined(__SANITIZE_THREAD__)
    true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

/**
 * ASan installs its own SIGSEGV handler (report, then plain exit), so
 * a child that segfaults under ASan dies by exit code, not by signal —
 * the signal-provenance assertions only hold in uninstrumented builds.
 * Abort/hang/throw containment is sanitizer-agnostic and stays on.
 */
constexpr bool kAsanBuild =
#if defined(__SANITIZE_ADDRESS__)
    true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    true;
#else
    false;
#endif
#else
    false;
#endif

#define SKIP_UNDER_TSAN()                                             \
    do {                                                              \
        if (kTsanBuild)                                               \
            GTEST_SKIP() << "fork-based isolation not run under TSan"; \
    } while (0)

#define SKIP_IF_SEGV_INTERCEPTED()                                    \
    do {                                                              \
        SKIP_UNDER_TSAN();                                            \
        if (kAsanBuild)                                               \
            GTEST_SKIP() << "ASan intercepts SIGSEGV provenance";     \
    } while (0)

/**
 * Forking from several pool workers at once is safe with glibc's
 * malloc (its atfork handlers make the child's heap consistent) but
 * can deadlock under ASan: a child forked while another worker holds
 * the sanitizer allocator's internal lock hangs in its first malloc
 * and the watchdog poisons it. Multi-worker fork tests therefore run
 * only in uninstrumented builds; the jobs=1 containment tests keep
 * covering the fork path under ASan.
 */
#define SKIP_IF_PARALLEL_FORK_UNSAFE()                                \
    do {                                                              \
        SKIP_UNDER_TSAN();                                            \
        if (kAsanBuild)                                               \
            GTEST_SKIP()                                              \
                << "multi-worker fork can deadlock under ASan";       \
    } while (0)

TEST(ProcIsolationTest, ProcessModeBitIdenticalToThreadMode)
{
    SKIP_IF_PARALLEL_FORK_UNSAFE();
    // The acceptance bar for isolation: healthy cells must not care
    // where they ran. Three design points, parallel pools, both modes.
    auto runWith = [](IsolationMode mode) {
        SweepOptions opts;
        opts.jobs = 3;
        opts.isolation = mode;
        Sweep sweep(threeDesignPoints(), {"bzip", "art"}, opts);
        sweep.setJobFn(runSimulationJob);
        return sweep.run();
    };
    SweepOutcome thread = runWith(IsolationMode::Thread);
    SweepOutcome process = runWith(IsolationMode::Process);
    ASSERT_EQ(thread.poisonedCells, 0u);
    ASSERT_EQ(process.poisonedCells, 0u);
    for (std::size_t r = 0; r < thread.grid.size(); ++r)
        for (std::size_t c = 0; c < thread.grid[r].size(); ++c)
            EXPECT_EQ(fingerprint(thread.grid[r][c].result),
                      fingerprint(process.grid[r][c].result))
                << "cell (" << r << "," << c << ") diverged";
    EXPECT_EQ(CsvFileSink::render(thread),
              CsvFileSink::render(process));
}

TEST(ProcIsolationTest, SegfaultPoisonsOnlyItsCell)
{
    SKIP_IF_SEGV_INTERCEPTED();
    SweepOptions opts;
    opts.jobs = 2;
    opts.isolation = IsolationMode::Process;
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &ctx) {
        if (ctx.row() == 1 && ctx.col() == 0)
            ::raise(SIGSEGV);
        return dummyResult(cfg.benchmark);
    });
    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 1u);
    EXPECT_NE(out.exitCode(), 0);
    const SweepCell &dead = out.grid[1][0];
    EXPECT_EQ(dead.status, JobStatus::Crashed);
    EXPECT_EQ(dead.termSignal, SIGSEGV);
    EXPECT_NE(dead.error.find("signal"), std::string::npos);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 2; ++c)
            if (!(r == 1 && c == 0)) {
                EXPECT_EQ(out.grid[r][c].status, JobStatus::Ok);
                EXPECT_EQ(out.grid[r][c].termSignal, 0);
            }
}

TEST(ProcIsolationTest, AssertColdPathAbortIsContained)
{
    SKIP_UNDER_TSAN();
    // The LSQ_ASSERT cold path aborts the *child*; the sweep survives
    // and the cell carries SIGABRT plus the assertion text from the
    // child's stderr.
    SweepOptions opts;
    opts.jobs = 1;
    opts.isolation = IsolationMode::Process;
    Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &, const JobContext &)
                       -> SimResult {
        LSQ_ASSERT(false, "injected assertion for containment test");
        return SimResult{};
    });
    SweepOutcome out = sweep.run();
    const SweepCell &dead = out.grid[0][0];
    EXPECT_EQ(dead.status, JobStatus::Crashed);
    EXPECT_EQ(dead.termSignal, SIGABRT);
    EXPECT_NE(dead.stderrTail.find(
                  "injected assertion for containment test"),
              std::string::npos);
    EXPECT_EQ(out.poisonedCells, 1u);
}

TEST(ProcIsolationTest, PanicPathIsContained)
{
    SKIP_UNDER_TSAN();
    // LSQ_PANIC is the checker's failure path (the ordering oracle
    // panics with provenance); containment must look identical to the
    // assert path.
    SweepOptions opts;
    opts.jobs = 1;
    opts.isolation = IsolationMode::Process;
    Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &, const JobContext &)
                       -> SimResult {
        LSQ_PANIC("oracle mismatch: injected panic for test");
        return SimResult{};
    });
    SweepOutcome out = sweep.run();
    const SweepCell &dead = out.grid[0][0];
    EXPECT_EQ(dead.status, JobStatus::Crashed);
    EXPECT_EQ(dead.termSignal, SIGABRT);
    EXPECT_NE(dead.stderrTail.find("injected panic for test"),
              std::string::npos);
}

TEST(ProcIsolationTest, HangIsReapedByHeartbeatWatchdog)
{
    SKIP_UNDER_TSAN();
    SweepOptions opts;
    opts.jobs = 1;
    opts.isolation = IsolationMode::Process;
    opts.watchdog = std::chrono::milliseconds(300);
    Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &, const JobContext &)
                       -> SimResult {
        for (;;)
            ::pause(); // never beats, never returns
    });
    SweepOutcome out = sweep.run();
    const SweepCell &dead = out.grid[0][0];
    EXPECT_EQ(dead.status, JobStatus::TimedOut);
    EXPECT_NE(dead.error.find("heartbeat"), std::string::npos);
}

TEST(ProcIsolationTest, ChildThrowRetriesAndReportsWhat)
{
    SKIP_UNDER_TSAN();
    SweepOptions opts;
    opts.jobs = 1;
    opts.isolation = IsolationMode::Process;
    opts.maxAttempts = 2;
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &, const JobContext &)
                       -> SimResult {
        throw std::runtime_error("deliberate child failure");
    });
    SweepOutcome out = sweep.run();
    const SweepCell &dead = out.grid[0][0];
    EXPECT_EQ(dead.status, JobStatus::Failed);
    EXPECT_EQ(dead.attempts, 2u);
    EXPECT_EQ(dead.error, "deliberate child failure");
    EXPECT_EQ(dead.termSignal, 0);
}

TEST(ProcIsolationTest, CrashedCellRetriesCanSucceed)
{
    SKIP_IF_SEGV_INTERCEPTED();
    // First attempt segfaults, second succeeds: attempt index comes
    // through the JobContext, so the child can behave differently.
    SweepOptions opts;
    opts.jobs = 1;
    opts.isolation = IsolationMode::Process;
    opts.maxAttempts = 2;
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &ctx) {
        if (ctx.attempt() == 0)
            ::raise(SIGSEGV);
        return dummyResult(cfg.benchmark);
    });
    SweepOutcome out = sweep.run();
    const SweepCell &cell = out.grid[0][0];
    EXPECT_EQ(cell.status, JobStatus::Ok);
    EXPECT_EQ(cell.attempts, 2u);
    EXPECT_EQ(cell.termSignal, 0); // provenance is per final attempt
    EXPECT_EQ(out.poisonedCells, 0u);
}

// ------------------------------------------------------ journal ------

TEST(JournalTest, RoundTripRestoresResultsBitExactly)
{
    std::string path = testing::TempDir() + "/roundtrip.journal";
    std::remove(path.c_str());

    SweepOptions opts;
    opts.jobs = 2;
    opts.name = "journal_unit";
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc"}, opts);
    sweep.setJobFn(runSimulationJob);
    SweepOutcome out;
    {
        JournalWriter journal(path);
        ASSERT_TRUE(journal.ok());
        sweep.addSink(&journal);
        out = sweep.run();
    }
    ASSERT_EQ(out.poisonedCells, 0u);

    JournalContents j;
    std::string error;
    ASSERT_TRUE(readJournal(path, j, error)) << error;
    EXPECT_EQ(j.name, "journal_unit");
    EXPECT_EQ(j.rows, 2u);
    EXPECT_EQ(j.cols, 2u);
    EXPECT_FALSE(j.truncatedTail);
    ASSERT_EQ(j.cells.size(), 4u);
    for (const JournalCell &cell : j.cells) {
        EXPECT_EQ(cell.status, JobStatus::Ok);
        ASSERT_TRUE(cell.hasResult);
        EXPECT_EQ(fingerprint(cell.result),
                  fingerprint(out.grid[cell.row][cell.col].result));
        EXPECT_EQ(cell.seed, out.grid[cell.row][cell.col].seed);
    }
    std::remove(path.c_str());
}

TEST(JournalTest, TornTailIsToleratedNotFatal)
{
    std::string path = testing::TempDir() + "/torn.journal";
    std::remove(path.c_str());
    {
        SweepOptions opts;
        opts.jobs = 1;
        Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
        sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
            return dummyResult(cfg.benchmark);
        });
        JournalWriter journal(path);
        sweep.addSink(&journal);
        sweep.run();
    }
    // Simulate a crash mid-append: half a frame of garbage.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write("\x10\x00\x00\x00gar", 7);
    }
    JournalContents j;
    std::string error;
    ASSERT_TRUE(readJournal(path, j, error)) << error;
    EXPECT_TRUE(j.truncatedTail);
    EXPECT_EQ(j.cells.size(), 1u); // the intact record survives
    std::remove(path.c_str());
}

TEST(JournalTest, OversizedRecordLengthIsATornTailNotAnAllocation)
{
    // A crafted (or bit-flipped) u32 length past the 64 MiB record
    // cap must end the walk like a torn tail — never drive the reader
    // into a multi-gigabyte allocation, even when the file happens to
    // be long enough to "contain" the claimed record.
    std::string path = testing::TempDir() + "/oversized.journal";
    std::remove(path.c_str());
    {
        SweepOptions opts;
        opts.jobs = 1;
        Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
        sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
            return dummyResult(cfg.benchmark);
        });
        JournalWriter journal(path);
        sweep.addSink(&journal);
        sweep.run();
    }
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        const std::uint32_t huge = 0x7fffffff;
        out.write(reinterpret_cast<const char *>(&huge), sizeof huge);
        out.write("\x00\x00\x00\x00", 4); // crc (never reached)
        std::string padding(1024, 'x');
        out.write(padding.data(),
                  static_cast<std::streamsize>(padding.size()));
    }
    JournalContents j;
    std::string error;
    ASSERT_TRUE(readJournal(path, j, error)) << error;
    EXPECT_TRUE(j.truncatedTail);
    EXPECT_EQ(j.cells.size(), 1u); // the intact prefix survives

    // The raw walk (daemon re-adoption) applies the same cap.
    std::vector<std::string> payloads;
    bool torn = false;
    ASSERT_TRUE(readJournalRaw(path, payloads, torn, error)) << error;
    EXPECT_TRUE(torn);
    EXPECT_EQ(payloads.size(), 2u); // SweepBegin + the one cell
    std::remove(path.c_str());
}

TEST(JournalTest, RawWalkPreservesEmissionOrder)
{
    // readJournalRaw returns payloads exactly as written — including
    // duplicates readJournal would dedup — because a restarted lsqd
    // rebuilds its record stream (and the indices attached clients
    // hold) from this order.
    std::string path = testing::TempDir() + "/raw.journal";
    std::remove(path.c_str());

    const std::string begin =
        encodeSweepBeginRecord("raw_unit", {"base"}, {"bzip"});
    JournalCell cell;
    cell.row = 0;
    cell.col = 0;
    cell.status = JobStatus::Failed;
    cell.error = "first try";
    const std::string first = encodeCellRecord(cell);
    cell.status = JobStatus::TimedOut;
    cell.error = "second try";
    const std::string second = encodeCellRecord(cell);

    {
        std::ofstream out(path, std::ios::binary);
        out.write(kJournalMagic, sizeof kJournalMagic);
        for (const std::string *p : {&begin, &first, &second}) {
            std::string frame = frameJournalRecord(*p);
            out.write(frame.data(),
                      static_cast<std::streamsize>(frame.size()));
        }
    }

    std::vector<std::string> payloads;
    bool torn = true;
    std::string error;
    ASSERT_TRUE(readJournalRaw(path, payloads, torn, error)) << error;
    EXPECT_FALSE(torn);
    ASSERT_EQ(payloads.size(), 3u);
    EXPECT_EQ(payloads[0], begin);
    EXPECT_EQ(payloads[1], first);
    EXPECT_EQ(payloads[2], second);
    std::remove(path.c_str());
}

TEST(JournalTest, RejectsNonJournalFiles)
{
    std::string path = testing::TempDir() + "/notajournal";
    {
        std::ofstream out(path, std::ios::binary);
        out << "hello";
    }
    JournalContents j;
    std::string error;
    EXPECT_FALSE(readJournal(path, j, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(
        readJournal(testing::TempDir() + "/missing.journal", j, error));
    std::remove(path.c_str());
}

TEST(JournalTest, MergeUnionsJournalsLaterRecordWins)
{
    // The `lsqjournal merge` semantics: feed every record of N
    // journals of one sweep through a JournalAccumulator (stream
    // order), canonicalize with writeJournalFile, and the result
    // round-trips through readJournal. Duplicate (row, col) records
    // resolve later-record-wins — a machine that retried a cell
    // overrides an earlier failure.
    const std::string begin =
        encodeSweepBeginRecord("merge_unit", {"base"}, {"bzip", "gcc"});

    JournalCell failed;
    failed.row = 0;
    failed.col = 0;
    failed.status = JobStatus::Failed;
    failed.attempts = 1;
    failed.error = "first machine died";

    JournalCell other;
    other.row = 0;
    other.col = 1;
    other.status = JobStatus::TimedOut;
    other.attempts = 2;
    other.error = "hung";

    JournalCell retried = failed;
    retried.status = JobStatus::Ok;
    retried.attempts = 2;
    retried.error.clear();

    // Journal A holds the failure and cell (0,1); journal B, appended
    // later in stream order, holds the successful retry of (0,0).
    JournalAccumulator acc;
    std::string error;
    ASSERT_TRUE(acc.add(begin, error)) << error;
    ASSERT_TRUE(acc.add(encodeCellRecord(failed), error)) << error;
    ASSERT_TRUE(acc.add(encodeCellRecord(other), error)) << error;
    ASSERT_TRUE(acc.add(begin, error)) << error;
    ASSERT_TRUE(acc.add(encodeCellRecord(retried), error)) << error;

    JournalContents merged = acc.contents();
    EXPECT_EQ(merged.name, "merge_unit");
    ASSERT_EQ(merged.cells.size(), 2u);
    EXPECT_EQ(merged.cells[0].status, JobStatus::Ok);
    EXPECT_EQ(merged.cells[0].attempts, 2u);
    EXPECT_EQ(merged.cells[1].status, JobStatus::TimedOut);

    const std::string path = testing::TempDir() + "/merged.journal";
    std::remove(path.c_str());
    ASSERT_TRUE(writeJournalFile(path, merged, error)) << error;

    JournalContents back;
    ASSERT_TRUE(readJournal(path, back, error)) << error;
    EXPECT_EQ(back.name, "merge_unit");
    EXPECT_EQ(back.rows, 1u);
    EXPECT_EQ(back.cols, 2u);
    EXPECT_FALSE(back.truncatedTail);
    ASSERT_EQ(back.cells.size(), 2u);
    EXPECT_EQ(back.cells[0].row, 0u);
    EXPECT_EQ(back.cells[0].col, 0u);
    EXPECT_EQ(back.cells[0].status, JobStatus::Ok);
    EXPECT_EQ(back.cells[1].col, 1u);
    EXPECT_EQ(back.cells[1].status, JobStatus::TimedOut);
    EXPECT_EQ(back.cells[1].error, "hung");
    std::remove(path.c_str());
}

TEST(JournalTest, ResumeRerunsOnlyUnfinishedCells)
{
    std::string path = testing::TempDir() + "/resume.journal";
    std::remove(path.c_str());

    auto makeSweep = [](SweepOptions opts) {
        opts.jobs = 1;
        opts.name = "resume_unit";
        return Sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                     {"bzip", "gcc"}, opts);
    };

    // First run: cell (1,1) fails, everything else lands in the
    // journal as Ok.
    std::atomic<int> executed{0};
    {
        Sweep sweep = makeSweep({});
        sweep.setJobFn(
            [&executed](const SimConfig &cfg, const JobContext &ctx)
                -> SimResult {
                ++executed;
                if (ctx.row() == 1 && ctx.col() == 1)
                    throw std::runtime_error("first pass failure");
                return dummyResult(cfg.benchmark);
            });
        JournalWriter journal(path);
        sweep.addSink(&journal);
        SweepOutcome out = sweep.run();
        EXPECT_EQ(out.poisonedCells, 1u);
        EXPECT_EQ(executed.load(), 4);
    }

    // Resume: only the failed cell re-executes, and this time it
    // succeeds; the journal (appended in place) then reads complete.
    JournalContents j;
    std::string error;
    ASSERT_TRUE(readJournal(path, j, error)) << error;
    executed = 0;
    {
        Sweep sweep = makeSweep({});
        sweep.setJobFn(
            [&executed](const SimConfig &cfg, const JobContext &)
                -> SimResult {
                ++executed;
                return dummyResult(cfg.benchmark);
            });
        sweep.setResume(std::move(j));
        JournalWriter journal(path, /*append=*/true);
        sweep.addSink(&journal);
        SweepOutcome out = sweep.run();
        EXPECT_EQ(executed.load(), 1);
        EXPECT_EQ(out.poisonedCells, 0u);
        EXPECT_EQ(out.restoredCells, 3u);
        EXPECT_TRUE(out.grid[0][0].restored);
        EXPECT_FALSE(out.grid[1][1].restored);
    }
    JournalContents final;
    ASSERT_TRUE(readJournal(path, final, error)) << error;
    ASSERT_EQ(final.cells.size(), 4u);
    for (const JournalCell &cell : final.cells)
        EXPECT_EQ(cell.status, JobStatus::Ok)
            << "cell (" << cell.row << "," << cell.col << ")";
    std::remove(path.c_str());
}

TEST(JournalTest, ShapeMismatchIsIgnoredSafely)
{
    std::string path = testing::TempDir() + "/shape.journal";
    std::remove(path.c_str());
    {
        SweepOptions opts;
        opts.jobs = 1;
        Sweep sweep({{"a", tinyConfig}}, {"bzip"}, opts);
        sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
            return dummyResult(cfg.benchmark);
        });
        JournalWriter journal(path);
        sweep.addSink(&journal);
        sweep.run();
    }
    JournalContents j;
    std::string error;
    ASSERT_TRUE(readJournal(path, j, error)) << error;

    // A 2x2 sweep fed a 1x1 journal must run everything from scratch.
    SweepOptions opts;
    opts.jobs = 1;
    std::atomic<int> executed{0};
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc"}, opts);
    sweep.setJobFn([&executed](const SimConfig &cfg,
                               const JobContext &) {
        ++executed;
        return dummyResult(cfg.benchmark);
    });
    sweep.setResume(std::move(j));
    SweepOutcome out = sweep.run();
    EXPECT_EQ(executed.load(), 4);
    EXPECT_EQ(out.restoredCells, 0u);
    std::remove(path.c_str());
}

// ------------------------------------------------- atomic writes -----

TEST(SinkTest, CrashedCellsCarryProvenanceInJson)
{
    SweepOutcome out;
    out.name = "prov";
    out.grid.resize(1);
    out.grid[0].resize(1);
    SweepCell &cell = out.grid[0][0];
    cell.configLabel = "a";
    cell.benchmark = "bzip";
    cell.status = JobStatus::Crashed;
    cell.termSignal = 11;
    cell.stderrTail = "segv provenance";
    std::string doc = JsonFileSink::render(out, {});
    EXPECT_NE(doc.find("\"status\": \"crashed\""), std::string::npos);
    EXPECT_NE(doc.find("\"term_signal\": 11"), std::string::npos);
    EXPECT_NE(doc.find("segv provenance"), std::string::npos);

    // Healthy cells keep the historical schema: no provenance keys.
    cell.status = JobStatus::Ok;
    cell.termSignal = 0;
    cell.stderrTail.clear();
    std::string healthy = JsonFileSink::render(out, {});
    EXPECT_EQ(healthy.find("term_signal"), std::string::npos);
    EXPECT_EQ(healthy.find("stderr_tail"), std::string::npos);
}

TEST(SinkDeathTest, KillMidWriteNeverTearsTheTargetFile)
{
    SKIP_UNDER_TSAN();
    std::string path = testing::TempDir() + "/atomic.json";
    ASSERT_TRUE(writeFileCreatingDirs(path, "ORIGINAL CONTENT\n"));

    // The hook fires between writing the temp file and the rename:
    // dying there must leave the original untouched.
    setWriteFileTestHook([] { std::_Exit(42); });
    EXPECT_EXIT(writeFileCreatingDirs(path, "NEW CONTENT\n"),
                testing::ExitedWithCode(42), "");
    setWriteFileTestHook(nullptr);

    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "ORIGINAL CONTENT\n");

    // And with the hook gone the replacement goes through.
    ASSERT_TRUE(writeFileCreatingDirs(path, "NEW CONTENT\n"));
    std::ifstream in2(path);
    std::stringstream ss2;
    ss2 << in2.rdbuf();
    EXPECT_EQ(ss2.str(), "NEW CONTENT\n");
    std::remove(path.c_str());
}

// --------------------------------------------- isolation resolution --

TEST(ResolveIsolationTest, PrecedenceChain)
{
    setIsolationOverride(IsolationMode::Auto);
    unsetenv("LSQSCALE_ISOLATION");
    EXPECT_EQ(resolveIsolation(IsolationMode::Auto),
              IsolationMode::Thread);
    EXPECT_EQ(resolveIsolation(IsolationMode::Process),
              IsolationMode::Process);

    setenv("LSQSCALE_ISOLATION", "process", 1);
    EXPECT_EQ(resolveIsolation(IsolationMode::Auto),
              IsolationMode::Process);
    EXPECT_EQ(resolveIsolation(IsolationMode::Thread),
              IsolationMode::Thread); // explicit beats env

    setIsolationOverride(IsolationMode::Thread);
    EXPECT_EQ(resolveIsolation(IsolationMode::Auto),
              IsolationMode::Thread); // override beats env

    setenv("LSQSCALE_ISOLATION", "bogus", 1);
    setIsolationOverride(IsolationMode::Auto);
    EXPECT_EQ(resolveIsolation(IsolationMode::Auto),
              IsolationMode::Thread);
    unsetenv("LSQSCALE_ISOLATION");
}

TEST(ResolveIsolationTest, WatchdogEnvOverride)
{
    unsetenv("LSQSCALE_WATCHDOG_MS");
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              1234);
    setenv("LSQSCALE_WATCHDOG_MS", "250", 1);
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              250);
    setenv("LSQSCALE_WATCHDOG_MS", "0", 1); // 0 = disabled
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              0);
    setenv("LSQSCALE_WATCHDOG_MS", "junk", 1);
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              1234);
    unsetenv("LSQSCALE_WATCHDOG_MS");
}

// ------------------------------------------------- jobs resolution ---

TEST(ResolveJobsTest, PrecedenceAndCapping)
{
    setJobsOverride(0);
    // Explicit request wins and is capped by job count.
    EXPECT_EQ(resolveJobs(8, 3), 3u);
    EXPECT_EQ(resolveJobs(2, 100), 2u);
    // Override beats the environment.
    setenv("LSQSCALE_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0, 100), 5u);
    setJobsOverride(7);
    EXPECT_EQ(resolveJobs(0, 100), 7u);
    EXPECT_EQ(resolveJobs(3, 100), 3u); // request beats override
    setJobsOverride(0);
    unsetenv("LSQSCALE_JOBS");
    // Fallback is hardware concurrency, floored at 1.
    EXPECT_GE(resolveJobs(0, 100), 1u);
    EXPECT_EQ(resolveJobs(0, 1), 1u);
}

} // namespace
} // namespace lsqscale
