/**
 * @file
 * Tests for the parallel sweep harness (src/harness/).
 *
 * The load-bearing property is the determinism contract from
 * docs/HARNESS.md: a parallel sweep must be bit-identical to a serial
 * sweep and to the historical serial runner loop. The rest covers the
 * failure semantics (retry with backoff, cooperative timeout,
 * poisoned-cell reporting) and the sink API. Under -DLSQ_CHECKER=ON
 * every simulation below also shadow-executes against the ordering
 * oracle on pool workers, which is exactly the "checker under the
 * pool" configuration the TSan preset validates.
 */

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "harness/job_pool.hh"
#include "harness/sink.hh"
#include "harness/sweep.hh"
#include "sim/experiment.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

/** Small, fast design points used throughout. */
SimConfig
tinyConfig(const std::string &bench)
{
    SimConfig cfg = configs::base(bench);
    cfg.instructions = 2000;
    cfg.warmup = 200;
    return cfg;
}

std::vector<NamedConfig>
threeDesignPoints()
{
    return {
        {"base", [](const std::string &b) { return tinyConfig(b); }},
        {"perfect",
         [](const std::string &b) {
             return configs::withPerfectPredictor(tinyConfig(b));
         }},
        {"pair",
         [](const std::string &b) {
             return configs::withPairPredictor(tinyConfig(b));
         }},
    };
}

const std::vector<std::string> kBenches = {"bzip", "gcc", "art",
                                           "mgrid"};

/** Canonical serialization of a result for bit-identity comparison. */
std::string
fingerprint(const SimResult &r)
{
    std::ostringstream os;
    os << r.benchmark << ":" << r.cycles << ":" << r.committed << "\n"
       << r.stats.dump();
    return os.str();
}

/** A dummy result for fabricated (non-simulating) jobs. */
SimResult
dummyResult(const std::string &bench)
{
    SimResult r;
    r.benchmark = bench;
    r.cycles = 100;
    r.committed = 250;
    return r;
}

// ------------------------------------------------------- JobPool -----

TEST(JobPoolTest, RunsEverySubmittedJob)
{
    JobPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 64);
}

TEST(JobPoolTest, JobsRunConcurrently)
{
    // Four jobs that each block until all four have started can only
    // finish if the pool really runs them on distinct threads.
    JobPool pool(4);
    std::mutex mu;
    std::condition_variable cv;
    int started = 0;
    for (int i = 0; i < 4; ++i) {
        pool.submit([&] {
            std::unique_lock<std::mutex> lock(mu);
            ++started;
            cv.notify_all();
            cv.wait(lock, [&] { return started == 4; });
        });
    }
    pool.wait();
    EXPECT_EQ(started, 4);
}

TEST(JobPoolTest, WaitIsReusableAcrossBatches)
{
    JobPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

// ------------------------------------------------- determinism -------

TEST(SweepTest, ParallelBitIdenticalToSerialAndHistoricalLoop)
{
    auto cfgs = threeDesignPoints();

    ExperimentRunner serialRunner(kBenches);
    serialRunner.setJobs(1);
    auto serial = serialRunner.runAll(cfgs);

    ExperimentRunner parallelRunner(kBenches);
    parallelRunner.setJobs(4);
    auto parallel = parallelRunner.runAll(cfgs);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t r = 0; r < serial.size(); ++r) {
        ASSERT_EQ(serial[r].size(), parallel[r].size());
        for (std::size_t c = 0; c < serial[r].size(); ++c)
            EXPECT_EQ(fingerprint(serial[r][c]),
                      fingerprint(parallel[r][c]))
                << cfgs[r].label << "/" << kBenches[c];
    }

    // And both match the pre-harness serial loop exactly.
    for (std::size_t r = 0; r < cfgs.size(); ++r) {
        for (std::size_t c = 0; c < kBenches.size(); ++c) {
            Simulator sim(cfgs[r].make(kBenches[c]));
            EXPECT_EQ(fingerprint(sim.run()),
                      fingerprint(parallel[r][c]))
                << cfgs[r].label << "/" << kBenches[c];
        }
    }
}

TEST(SweepTest, JobSeedIsPureInCoordinates)
{
    std::uint64_t s00 = Sweep::jobSeed(1, 0, 0);
    EXPECT_EQ(s00, Sweep::jobSeed(1, 0, 0));
    EXPECT_NE(s00, Sweep::jobSeed(1, 0, 1));
    EXPECT_NE(s00, Sweep::jobSeed(1, 1, 0));
    EXPECT_NE(s00, Sweep::jobSeed(2, 0, 0));
    EXPECT_NE(Sweep::jobSeed(1, 0, 1), Sweep::jobSeed(1, 1, 0));
}

TEST(SweepTest, JobSeedDerivationIsPinned)
{
    // Exact values of the documented derivation (docs/HARNESS.md):
    //   jobSeed(base, row, col) =
    //     mix(mix(base + 0x9e3779b97f4a7c15 * (row + 1))
    //             + 0xbf58476d1ce4e5b9 * (col + 1))
    // with Rng::mix the zero-guarded splitmix64 finalizer. Golden
    // JSONs, recorded sweep CSVs, and checkpoint provenance all embed
    // these seeds: changing the derivation invalidates every recorded
    // artifact, so it must never change silently.
    EXPECT_EQ(Sweep::jobSeed(0, 0, 0), 8882014700738686411ULL);
    EXPECT_EQ(Sweep::jobSeed(0, 0, 1), 3055597201337537046ULL);
    EXPECT_EQ(Sweep::jobSeed(0, 1, 0), 759402495750001892ULL);
    EXPECT_EQ(Sweep::jobSeed(42, 0, 0), 13514425966345425732ULL);
    EXPECT_EQ(Sweep::jobSeed(42, 2, 3), 15584810229137078266ULL);
    EXPECT_EQ(Sweep::jobSeed(0xdeadbeef, 7, 11),
              13380929626409549622ULL);
}

TEST(SweepTest, CellSeedsIndependentOfWorkerCount)
{
    auto collectSeeds = [](unsigned jobs) {
        SweepOptions opts;
        opts.jobs = jobs;
        opts.baseSeed = 42;
        Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                    {"bzip", "gcc", "art"}, opts);
        sweep.setJobFn([](const SimConfig &cfg, const JobContext &ctx) {
            SimResult r = dummyResult(cfg.benchmark);
            r.cycles = ctx.seed(); // smuggle the seed out
            return r;
        });
        std::vector<std::uint64_t> seeds;
        for (const auto &row : sweep.run().grid)
            for (const auto &cell : row) {
                EXPECT_EQ(cell.seed,
                          Sweep::jobSeed(42, cell.row, cell.col));
                EXPECT_EQ(cell.seed, cell.result.cycles);
                seeds.push_back(cell.seed);
            }
        return seeds;
    };
    EXPECT_EQ(collectSeeds(1), collectSeeds(4));
}

// ---------------------------------------------- failure semantics ----

TEST(SweepTest, RetriesAfterInjectedFailure)
{
    SweepOptions opts;
    opts.jobs = 4;
    opts.maxAttempts = 3;
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"flaky", tinyConfig}}, {"bzip", "gcc"}, opts);

    // The bzip cell fails on its first two attempts, then succeeds.
    std::atomic<unsigned> bzipTries{0};
    sweep.setJobFn(
        [&bzipTries](const SimConfig &cfg, const JobContext &ctx) {
            if (cfg.benchmark == "bzip") {
                ++bzipTries;
                if (ctx.attempt() < 2)
                    throw std::runtime_error("injected flake");
            }
            return dummyResult(cfg.benchmark);
        });

    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 0u);
    EXPECT_EQ(out.exitCode(), 0);
    EXPECT_EQ(bzipTries.load(), 3u);
    EXPECT_EQ(out.grid[0][0].attempts, 3u);
    EXPECT_EQ(out.grid[0][0].status, JobStatus::Ok);
    EXPECT_EQ(out.grid[0][1].attempts, 1u);
}

TEST(SweepTest, PoisonedCellDoesNotKillTheSweep)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"cursed", tinyConfig}}, {"bzip", "gcc", "art"}, opts);

    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        if (cfg.benchmark == "gcc")
            throw std::runtime_error("injected permanent failure");
        return dummyResult(cfg.benchmark);
    });

    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 1u);
    EXPECT_EQ(out.exitCode(), 1);
    EXPECT_NE(out.summary().find("1 poisoned"), std::string::npos);

    const SweepCell &bad = out.grid[0][1];
    EXPECT_EQ(bad.status, JobStatus::Failed);
    EXPECT_TRUE(bad.poisoned());
    EXPECT_EQ(bad.attempts, 2u);
    EXPECT_EQ(bad.error, "injected permanent failure");
    EXPECT_EQ(bad.result.cycles, 0u);       // zeroed, ipc() == 0
    EXPECT_EQ(bad.result.benchmark, "gcc"); // grid stays rectangular

    EXPECT_EQ(out.grid[0][0].status, JobStatus::Ok);
    EXPECT_EQ(out.grid[0][2].status, JobStatus::Ok);
}

TEST(SweepTest, CooperativeTimeoutCancelsTheCell)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.maxAttempts = 2;
    opts.timeout = std::chrono::milliseconds(30);
    opts.backoffBase = std::chrono::milliseconds(1);
    Sweep sweep({{"slow", tinyConfig}}, {"bzip", "gcc"}, opts);

    sweep.setJobFn([](const SimConfig &cfg, const JobContext &ctx) {
        if (cfg.benchmark == "gcc") {
            // A cooperative job polls expired() and bails out.
            while (!ctx.expired())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            throw std::runtime_error("budget exhausted");
        }
        return dummyResult(cfg.benchmark);
    });

    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.poisonedCells, 1u);
    EXPECT_EQ(out.exitCode(), 1);
    EXPECT_EQ(out.grid[0][1].status, JobStatus::TimedOut);
    EXPECT_EQ(out.grid[0][1].attempts, 2u);
    EXPECT_EQ(out.grid[0][0].status, JobStatus::Ok);
}

TEST(SweepTest, OverBudgetCompletionClassifiedAsTimeout)
{
    // A job that cannot poll still gets flagged when it comes back
    // after the deadline (best-effort detection).
    SweepOptions opts;
    opts.jobs = 1;
    opts.timeout = std::chrono::milliseconds(5);
    Sweep sweep({{"late", tinyConfig}}, {"bzip"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return dummyResult(cfg.benchmark);
    });
    SweepOutcome out = sweep.run();
    EXPECT_EQ(out.grid[0][0].status, JobStatus::TimedOut);
    EXPECT_EQ(out.exitCode(), 1);
}

// ------------------------------------------------------- sinks -------

class RecordingSink : public ResultSink
{
  public:
    void sweepBegin(const SweepOutcome &) override { ++begins; }
    void jobStarted(const SweepCell &) override { ++starts; }
    void cellDone(const SweepCell &cell) override
    {
        ++dones;
        if (cell.poisoned())
            ++poisoned;
    }
    void sweepEnd(const SweepOutcome &) override { ++ends; }

    int begins = 0, starts = 0, dones = 0, ends = 0, poisoned = 0;
};

TEST(SinkTest, SinksSeeEveryCellExactlyOnce)
{
    SweepOptions opts;
    opts.jobs = 4;
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc", "art"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        if (cfg.benchmark == "art")
            throw std::runtime_error("boom");
        return dummyResult(cfg.benchmark);
    });
    RecordingSink sink;
    sweep.addSink(&sink);
    SweepOutcome out = sweep.run();
    EXPECT_EQ(sink.begins, 1);
    EXPECT_EQ(sink.ends, 1);
    EXPECT_EQ(sink.starts, 6);
    EXPECT_EQ(sink.dones, 6);
    EXPECT_EQ(sink.poisoned, 2);
    EXPECT_EQ(out.poisonedCells, 2u);
}

TEST(SinkTest, CsvRenderIsStableOrderIpcGrid)
{
    SweepOptions opts;
    opts.jobs = 3;
    Sweep sweep({{"a", tinyConfig}, {"b", tinyConfig}},
                {"bzip", "gcc"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        return dummyResult(cfg.benchmark); // ipc = 250/100 = 2.5
    });
    std::string csv = CsvFileSink::render(sweep.run());
    EXPECT_EQ(csv,
              "benchmark,a,b\n"
              "bzip,2.500000,2.500000\n"
              "gcc,2.500000,2.500000\n");
}

TEST(SinkTest, JsonSinkEmitsWellFormedDocument)
{
    SweepOptions opts;
    opts.jobs = 2;
    opts.name = "unit_sweep";
    Sweep sweep({{"a", tinyConfig}}, {"bzip", "gcc"}, opts);
    sweep.setJobFn([](const SimConfig &cfg, const JobContext &) {
        if (cfg.benchmark == "gcc")
            throw std::runtime_error("json \"escape\" check\n");
        return dummyResult(cfg.benchmark);
    });
    std::string path =
        testing::TempDir() + "/BENCH_harness_unit.json";
    JsonFileSink sink(path, {{"purpose", "unit-test"}});
    sweep.addSink(&sink);
    sweep.run();

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "sink did not write " << path;
    std::stringstream ss;
    ss << in.rdbuf();
    std::string doc = ss.str();

    // Structure: balanced braces/brackets outside strings, one cell
    // record per grid cell, schema + metadata present, escapes legal.
    EXPECT_NE(doc.find("\"schema\": \"lsqscale-sweep-v1\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"unit_sweep\""), std::string::npos);
    EXPECT_NE(doc.find("\"purpose\": \"unit-test\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"status\": \"failed\""), std::string::npos);
    EXPECT_NE(doc.find("\"ipc\": 2.500000"), std::string::npos);
    EXPECT_NE(doc.find("json \\\"escape\\\" check\\n"),
              std::string::npos);
    int depth = 0;
    bool inString = false;
    for (std::size_t i = 0; i < doc.size(); ++i) {
        char ch = doc[i];
        if (inString) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                inString = false;
            continue;
        }
        if (ch == '"')
            inString = true;
        else if (ch == '{' || ch == '[')
            ++depth;
        else if (ch == '}' || ch == ']')
            --depth;
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(inString);
    std::remove(path.c_str());
}

// ------------------------------------------- nonzero exit summary ----

TEST(SweepDeathTest, NoteSweepFailuresForcesNonzeroExit)
{
    // The ExperimentRunner path: benches end with `return 0`, so
    // poisoned cells arm an atexit hook that rewrites the process
    // exit status. Death test: the child exits 1, not 0.
    EXPECT_EXIT(
        {
            noteSweepFailures(2);
            std::exit(0);
        },
        testing::ExitedWithCode(1), "2 poisoned cell");
}

// ------------------------------------------------- jobs resolution ---

TEST(ResolveJobsTest, PrecedenceAndCapping)
{
    setJobsOverride(0);
    // Explicit request wins and is capped by job count.
    EXPECT_EQ(resolveJobs(8, 3), 3u);
    EXPECT_EQ(resolveJobs(2, 100), 2u);
    // Override beats the environment.
    setenv("LSQSCALE_JOBS", "5", 1);
    EXPECT_EQ(resolveJobs(0, 100), 5u);
    setJobsOverride(7);
    EXPECT_EQ(resolveJobs(0, 100), 7u);
    EXPECT_EQ(resolveJobs(3, 100), 3u); // request beats override
    setJobsOverride(0);
    unsetenv("LSQSCALE_JOBS");
    // Fallback is hardware concurrency, floored at 1.
    EXPECT_GE(resolveJobs(0, 100), 1u);
    EXPECT_EQ(resolveJobs(0, 1), 1u);
}

} // namespace
} // namespace lsqscale
