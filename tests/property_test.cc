/**
 * @file
 * Randomized property tests: drive the LSQ structures with fuzzed
 * operation sequences and check invariants that must hold for any
 * legal sequence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <memory>
#include <vector>

#include "check/lsq_checker.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "lsq/lsq.hh"
#include "lsq/segment_allocator.hh"
#include "core/core.hh"
#include "memory/probe_agent.hh"
#include "predictor/store_set.hh"
#include "sample/checkpoint.hh"
#include "sim/sim_config.hh"
#include "workload/benchmark_profile.hh"

using namespace lsqscale;

// ---------------------------------------------- SegmentAllocator ------

class AllocatorFuzz
    : public ::testing::TestWithParam<std::tuple<SegAllocPolicy,
                                                 std::uint64_t>>
{
};

TEST_P(AllocatorFuzz, OccupancyInvariants)
{
    auto [policy, seed] = GetParam();
    const unsigned segments = 4, perSegment = 7;
    SegmentAllocator a(segments, perSegment, policy);
    Rng rng(seed);
    unsigned live = 0;

    for (int step = 0; step < 20000; ++step) {
        double r = rng.uniform();
        if (r < 0.45 && a.canAllocate()) {
            unsigned seg = a.allocate();
            ASSERT_LT(seg, segments);
            ++live;
        } else if (r < 0.75 && live > 0) {
            a.freeOldest();
            --live;
        } else if (live > 0) {
            a.freeYoungest();
            --live;
        }
        ASSERT_EQ(a.live(), live);
        unsigned sum = 0;
        for (unsigned s = 0; s < segments; ++s) {
            ASSERT_LE(a.occupancy(s), perSegment);
            sum += a.occupancy(s);
        }
        ASSERT_EQ(sum, live);
        ASSERT_EQ(a.canAllocate(), live < segments * perSegment);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, AllocatorFuzz,
    ::testing::Combine(::testing::Values(SegAllocPolicy::NoSelfCircular,
                                         SegAllocPolicy::SelfCircular),
                       ::testing::Values(1u, 7u, 99u, 1234u)));

// ---------------------------------------------------- LSQ fuzz --------

namespace {

struct ShadowLoad
{
    SeqNum seq;
    bool executed = false;
};

struct ShadowStore
{
    SeqNum seq;
    bool executed = false;
};

} // namespace

class LsqFuzz
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>>
{
};

TEST_P(LsqFuzz, ShadowModelAgreesOnOccupancy)
{
    auto [seed, combined] = GetParam();
    LsqParams params;
    params.lqEntries = 8;
    params.sqEntries = 8;
    params.numSegments = 2;
    params.searchPorts = 2;
    params.allocPolicy = SegAllocPolicy::SelfCircular;
    params.combinedQueue = combined;

    StatSet stats;
    Lsq lsq(params, stats);
    Rng rng(seed);

    std::deque<ShadowLoad> loads;
    std::deque<ShadowStore> stores;
    SeqNum nextSeq = 0;
    Cycle now = 0;

    for (int step = 0; step < 30000; ++step) {
        ++now;
        double r = rng.uniform();
        if (r < 0.30) {
            // Allocate a memory op.
            bool isLoad = rng.chance(0.7);
            if (isLoad && lsq.canAllocateLoad()) {
                lsq.allocateLoad(nextSeq, 0x1000 + 4 * nextSeq);
                loads.push_back({nextSeq, false});
                ++nextSeq;
            } else if (!isLoad && lsq.canAllocateStore()) {
                lsq.allocateStore(nextSeq, 0x1000 + 4 * nextSeq);
                stores.push_back({nextSeq, false});
                ++nextSeq;
            } else {
                ++nextSeq;   // arithmetic op, seq advances
            }
        } else if (r < 0.50) {
            // Execute a random non-executed load.
            std::vector<ShadowLoad *> cands;
            for (auto &l : loads)
                if (!l.executed)
                    cands.push_back(&l);
            if (!cands.empty()) {
                ShadowLoad *l = cands[rng.below(cands.size())];
                Addr addr = 0x8000 + 8 * (l->seq % 32);
                LoadIssueOutcome out =
                    lsq.issueLoad(l->seq, addr, now, rng.chance(0.8));
                if (out.status == LoadIssueStatus::Accepted)
                    l->executed = true;
            }
        } else if (r < 0.65) {
            // AGEN a random non-executed store.
            std::vector<ShadowStore *> cands;
            for (auto &s : stores)
                if (!s.executed)
                    cands.push_back(&s);
            if (!cands.empty()) {
                ShadowStore *s = cands[rng.below(cands.size())];
                Addr addr = 0x8000 + 8 * (s->seq % 32);
                if (lsq.storeAddrReady(s->seq, addr, now).accepted)
                    s->executed = true;
            }
        } else if (r < 0.85) {
            // Commit the oldest memory op if it has executed.
            SeqNum oldestLoad =
                loads.empty() ? kNoSeq : loads.front().seq;
            SeqNum oldestStore =
                stores.empty() ? kNoSeq : stores.front().seq;
            if (oldestLoad != kNoSeq &&
                (oldestStore == kNoSeq || oldestLoad < oldestStore)) {
                if (loads.front().executed) {
                    lsq.commitLoad(oldestLoad);
                    loads.pop_front();
                }
            } else if (oldestStore != kNoSeq) {
                if (stores.front().executed &&
                    lsq.commitStore(oldestStore, now).accepted)
                    stores.pop_front();
            }
        } else if (r < 0.90 && (loads.size() + stores.size()) > 0) {
            // Squash from a random live seq.
            SeqNum lo = kNoSeq;
            if (!loads.empty())
                lo = loads.front().seq;
            if (!stores.empty())
                lo = lo == kNoSeq ? stores.front().seq
                                  : std::min(lo, stores.front().seq);
            SeqNum target = lo + rng.below(nextSeq - lo + 1);
            lsq.squashFrom(target);
            while (!loads.empty() && loads.back().seq >= target)
                loads.pop_back();
            while (!stores.empty() && stores.back().seq >= target)
                stores.pop_back();
            // The stream replays: reuse seq numbers from the target.
            nextSeq = std::max(target, lo);
        }

        ASSERT_EQ(lsq.lqLive(), loads.size());
        ASSERT_EQ(lsq.sqLive(), stores.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LsqFuzz,
    ::testing::Combine(::testing::Values(3u, 11u, 42u, 500u, 9001u),
                       ::testing::Bool()));

// ------------------------------------------------ checked LSQ fuzz ----

/**
 * Randomized traces validated by the ordering oracle. Unlike LsqFuzz
 * above (which only checks occupancy and deliberately ignores the
 * LSQ's violation reports), this harness plays the core's role
 * faithfully — every load searches the SQ, every reported violation
 * triggers a squash-and-replay, commits retire the oldest op — so the
 * oracle's zero-mismatch guarantee applies: any forwarding or ordering
 * bug the random trace tickles fails the test with full provenance.
 *
 * The third parameter turns on a randomized coherence-probe schedule:
 * a ProbeAgent (scripted writers over the fuzz address range plus
 * random traffic over its commit-fed watch set) injects invalidations
 * through the same due/delivered/rejected protocol the core uses, and
 * every reported victim is squashed. The oracle validates the probe
 * path too — victim agreement, the squash obligation, and the
 * end-to-end remote-write staleness rule at every commit.
 */
class CheckedLsqFuzz
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, int, bool>>
{
};

namespace {

/** Deterministic address per op: replays after a squash re-read it. */
Addr
fuzzAddr(SeqNum seq)
{
    return 0x8000 + 8 * (seq % 16);
}

} // namespace

TEST_P(CheckedLsqFuzz, OracleFindsNoMismatches)
{
    auto [seed, design, probed] = GetParam();
    LsqParams params;
    params.lqEntries = 8;
    params.sqEntries = 8;
    params.numSegments = 2;
    params.searchPorts = 2;
    params.allocPolicy = SegAllocPolicy::SelfCircular;
    switch (design) {
      case 0:   // conventional
        break;
      case 1:   // pair-predictor scheme: detection at store commit
        params.checkViolationsAtCommit = true;
        break;
      case 2:   // load buffer replaces LQ load-load searches
        params.loadCheck = LoadCheckPolicy::LoadBuffer;
        params.loadBufferEntries = 2;
        break;
      case 3:   // combined load/store queue
        params.combinedQueue = true;
        break;
    }

    StatSet stats;
    Lsq lsq(params, stats);
    LsqChecker checker(params);
    lsq.attachChecker(&checker);
    Rng rng(seed);

    std::unique_ptr<ProbeAgent> probes;
    if (probed) {
        ProbeAgentParams pp;
        pp.enabled = true;
        pp.seed = seed ^ 0x70726f6265ULL;
        pp.probesPerKCycle = 25.0;
        pp.watchCapacity = 4;
        pp.writers.push_back(ProbeWriter{fuzzAddr(0), 40, 97, 0});
        pp.writers.push_back(ProbeWriter{fuzzAddr(5), 60, 131, 0});
        probes = std::make_unique<ProbeAgent>(pp);
    }

    std::deque<ShadowLoad> loads;
    std::deque<ShadowStore> stores;
    SeqNum nextSeq = 0;
    Cycle now = 0;

    auto doSquash = [&](SeqNum target) {
        lsq.squashFrom(target);
        while (!loads.empty() && loads.back().seq >= target)
            loads.pop_back();
        while (!stores.empty() && stores.back().seq >= target)
            stores.pop_back();
        nextSeq = target;   // the stream replays from the squash point
    };

    for (int step = 0; step < 20000; ++step) {
        ++now;
        if (probes) {
            // The coherence stage the core would run: deliver one due
            // probe, squash any reported victim, retry on rejection.
            Addr pa = 0;
            if (probes->due(now, pa)) {
                StoreSearchOutcome out = lsq.invalidate(pa, now);
                if (!out.accepted) {
                    probes->rejected();
                } else {
                    probes->delivered(pa, now, out.violationLoad);
                    if (out.violationLoad != kNoSeq)
                        doSquash(out.violationLoad);
                }
            }
        }
        double r = rng.uniform();
        if (r < 0.30) {
            bool isLoad = rng.chance(0.6);
            if (isLoad && lsq.canAllocateLoad()) {
                lsq.allocateLoad(nextSeq, 0x1000 + 4 * nextSeq);
                loads.push_back({nextSeq, false});
                ++nextSeq;
            } else if (!isLoad && lsq.canAllocateStore()) {
                lsq.allocateStore(nextSeq, 0x1000 + 4 * nextSeq);
                stores.push_back({nextSeq, false});
                ++nextSeq;
            } else {
                ++nextSeq;   // arithmetic op, seq advances
            }
        } else if (r < 0.52) {
            // Issue a random non-executed load; honor any load-load
            // violation report with the squash the core would perform.
            std::vector<ShadowLoad *> cands;
            for (auto &l : loads)
                if (!l.executed)
                    cands.push_back(&l);
            if (!cands.empty()) {
                ShadowLoad *l = cands[rng.below(cands.size())];
                LoadIssueOutcome out =
                    lsq.issueLoad(l->seq, fuzzAddr(l->seq), now, true);
                if (out.status == LoadIssueStatus::Accepted) {
                    l->executed = true;
                    if (!out.llViolations.empty()) {
                        SeqNum oldest = out.llViolations.front();
                        for (SeqNum v : out.llViolations)
                            oldest = std::min(oldest, v);
                        doSquash(oldest);
                    }
                }
            }
        } else if (r < 0.68) {
            // AGEN a random non-executed store; a reported premature
            // load squashes (conventional execute-time detection).
            std::vector<ShadowStore *> cands;
            for (auto &s : stores)
                if (!s.executed)
                    cands.push_back(&s);
            if (!cands.empty()) {
                ShadowStore *s = cands[rng.below(cands.size())];
                StoreSearchOutcome out =
                    lsq.storeAddrReady(s->seq, fuzzAddr(s->seq), now);
                if (out.accepted) {
                    s->executed = true;
                    if (out.violationLoad != kNoSeq)
                        doSquash(out.violationLoad);
                }
            }
        } else if (r < 0.90) {
            // Commit the oldest memory op if it has executed; honor
            // commit-time violation reports (pair scheme).
            SeqNum oldestLoad =
                loads.empty() ? kNoSeq : loads.front().seq;
            SeqNum oldestStore =
                stores.empty() ? kNoSeq : stores.front().seq;
            if (oldestLoad != kNoSeq &&
                (oldestStore == kNoSeq || oldestLoad < oldestStore)) {
                if (loads.front().executed) {
                    lsq.commitLoad(oldestLoad);
                    loads.pop_front();
                    if (probes)
                        probes->observeLoadCommit(
                            oldestLoad, 0x1000 + 4 * oldestLoad,
                            fuzzAddr(oldestLoad), now, kNoSeq, now);
                }
            } else if (oldestStore != kNoSeq &&
                       stores.front().executed) {
                StoreSearchOutcome out =
                    lsq.commitStore(oldestStore, now);
                if (out.accepted) {
                    stores.pop_front();
                    if (probes)
                        probes->observeStoreCommit(
                            oldestStore, 0x1000 + 4 * oldestStore,
                            fuzzAddr(oldestStore), now);
                    if (out.violationLoad != kNoSeq)
                        doSquash(out.violationLoad);
                }
            }
        } else if (loads.size() + stores.size() > 0) {
            // Branch misprediction: squash from a random live seq.
            SeqNum lo = kNoSeq;
            if (!loads.empty())
                lo = loads.front().seq;
            if (!stores.empty())
                lo = lo == kNoSeq ? stores.front().seq
                                  : std::min(lo, stores.front().seq);
            doSquash(lo + rng.below(nextSeq - lo + 1));
        }

        ASSERT_EQ(checker.mismatches(), 0u)
            << "step " << step << "\n" << checker.report();
    }

    // Drain: retire everything outstanding so the end-to-end commit
    // checks cover the tail of the trace too.
    for (int guard = 0; guard < 200000 &&
                        (loads.size() + stores.size()) > 0; ++guard) {
        ++now;
        SeqNum oldestLoad = loads.empty() ? kNoSeq : loads.front().seq;
        SeqNum oldestStore =
            stores.empty() ? kNoSeq : stores.front().seq;
        if (oldestLoad != kNoSeq &&
            (oldestStore == kNoSeq || oldestLoad < oldestStore)) {
            ShadowLoad &l = loads.front();
            if (!l.executed) {
                LoadIssueOutcome out =
                    lsq.issueLoad(l.seq, fuzzAddr(l.seq), now, true);
                if (out.status != LoadIssueStatus::Accepted)
                    continue;
                l.executed = true;
                if (!out.llViolations.empty()) {
                    SeqNum oldest = out.llViolations.front();
                    for (SeqNum v : out.llViolations)
                        oldest = std::min(oldest, v);
                    doSquash(oldest);
                    continue;
                }
            }
            lsq.commitLoad(l.seq);
            loads.pop_front();
        } else if (oldestStore != kNoSeq) {
            ShadowStore &s = stores.front();
            if (!s.executed) {
                StoreSearchOutcome out =
                    lsq.storeAddrReady(s.seq, fuzzAddr(s.seq), now);
                if (!out.accepted)
                    continue;
                s.executed = true;
                if (out.violationLoad != kNoSeq) {
                    doSquash(out.violationLoad);
                    continue;
                }
            }
            StoreSearchOutcome out = lsq.commitStore(s.seq, now);
            if (out.accepted) {
                stores.pop_front();
                if (out.violationLoad != kNoSeq)
                    doSquash(out.violationLoad);
            }
        }
    }
    EXPECT_EQ(loads.size() + stores.size(), 0u)
        << "drain loop failed to retire the tail";
    EXPECT_EQ(checker.mismatches(), 0u) << checker.report();
    lsq.attachChecker(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, CheckedLsqFuzz,
    ::testing::Combine(::testing::Values(5u, 123u, 4242u),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Bool()));

// ------------------------------------------- probe bit-identity -------

TEST(ProbeProperty, IdleAgentIsNonPerturbing)
{
    // The probe model must follow the tracer's discipline: attaching
    // an agent that never fires cannot perturb the run — the golden
    // suite stays valid for every probes-off configuration. Compare
    // the full sorted stats dump byte for byte.
    SimConfig cfg = configs::base("bzip");
    auto runDump = [&cfg](bool attach) {
        StatSet stats;
        Core core(cfg.core, cfg.lsq, cfg.memory,
                  profileFor(cfg.benchmark), cfg.seed, stats);
        ProbeAgentParams pp;
        pp.enabled = true;   // attached, but nothing ever scheduled
        ProbeAgent agent(pp);
        if (attach)
            core.attachCoherenceAgent(&agent);
        core.run(8000);
        if (attach) {
            core.attachCoherenceAgent(nullptr);
            EXPECT_EQ(agent.deliveredCount(), 0u);
        }
        return stats.dump();
    };
    EXPECT_EQ(runDump(false), runDump(true));
}

// ------------------------------------------- StoreSet counter fuzz ----

class StoreSetFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(StoreSetFuzz, CounterNeverDesyncsFromInFlightSet)
{
    // Fetch/issue/commit/squash stores of one set randomly; the
    // counter must be zero exactly when nothing is in flight (up to
    // saturation, which only occurs above 7 simultaneous stores —
    // avoided here).
    StoreSetParams params;
    params.clearInterval = 0;
    StoreSetPredictor ssp(params);
    ssp.trainPair(0x100, 0x200);

    Rng rng(GetParam());
    std::vector<std::pair<SeqNum, StorePrediction>> inflight;
    SeqNum next = 0;

    for (int step = 0; step < 20000; ++step) {
        double r = rng.uniform();
        if (r < 0.4 && inflight.size() < 7) {
            StorePrediction tag = ssp.storeFetch(0x100, next);
            inflight.emplace_back(next, tag);
            ++next;
        } else if (r < 0.7 && !inflight.empty()) {
            // Commit the oldest.
            auto [seq, tag] = inflight.front();
            inflight.erase(inflight.begin());
            ssp.storeIssued(tag, seq);
            ssp.storeCommitted(tag);
        } else if (!inflight.empty()) {
            // Squash the youngest.
            auto [seq, tag] = inflight.back();
            inflight.pop_back();
            ssp.storeSquashed(tag, seq);
        }
        ASSERT_EQ(ssp.counterNonZero(inflight.empty()
                                         ? ssp.loadFetch(0x200).ssid
                                         : inflight.front().second.ssid),
                  !inflight.empty())
            << "step " << step;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreSetFuzz,
                         ::testing::Values(2u, 29u, 777u));

// -------------------------------------------- forwarding property -----

TEST(LsqProperty, ForwardingAlwaysReturnsYoungestOlderMatch)
{
    // Randomized store sets; every load's forwarding source must be
    // the maximum store seq among matching older stores.
    Rng rng(77);
    for (int trial = 0; trial < 200; ++trial) {
        LsqParams params;
        params.lqEntries = 16;
        params.sqEntries = 16;
        params.searchPorts = 4;
        params.loadCheck = LoadCheckPolicy::None;
        StatSet stats;
        Lsq lsq(params, stats);
        LsqChecker checker(params);
        lsq.attachChecker(&checker);

        std::vector<std::pair<SeqNum, Addr>> storeAddrs;
        SeqNum seq = 0;
        unsigned nStores = 1 + rng.below(12);
        Cycle now = 0;
        for (unsigned i = 0; i < nStores; ++i) {
            Addr a = 0x9000 + 8 * rng.below(4);
            lsq.allocateStore(seq, 0x1000 + 4 * seq);
            while (!lsq.storeAddrReady(seq, a, now).accepted)
                ++now;
            storeAddrs.emplace_back(seq, a);
            ++seq;
            ++now;
        }
        Addr target = 0x9000 + 8 * rng.below(4);
        lsq.allocateLoad(seq, 0x1000 + 4 * seq);
        LoadIssueOutcome out;
        do {
            out = lsq.issueLoad(seq, target, now++, true);
        } while (out.status != LoadIssueStatus::Accepted);

        SeqNum expect = kNoSeq;
        for (auto &[s, a] : storeAddrs)
            if (a == target && s < seq &&
                (expect == kNoSeq || s > expect))
                expect = s;
        if (expect == kNoSeq) {
            EXPECT_FALSE(out.forwarded);
        } else {
            ASSERT_TRUE(out.forwarded);
            EXPECT_EQ(out.forwardedFrom, expect);
        }
        // The ordering oracle shadows the same trial and must agree.
        EXPECT_EQ(checker.mismatches(), 0u) << checker.report();
        lsq.attachChecker(nullptr);
    }
}

// --------------------------------- checkpointed oracle validation -----

/**
 * Checkpoint-mid-trace fuzz: run a detailed core partway, drain it,
 * snapshot it with the PR 4 checkpoint layer, restore into a fresh
 * core, and validate the *remainder* of the run under the ordering
 * oracle. Catches serialization bugs no round-trip counter diff can:
 * state that restores plausibly but violates an LSQ invariant only
 * several thousand operations later.
 */
class CheckpointedOracleFuzz
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{
  protected:
    void
    SetUp() override
    {
        unsetenv("LSQSCALE_INSTS");
        unsetenv("LSQSCALE_SAMPLE");
    }
};

TEST_P(CheckpointedOracleFuzz, RemainderRunsCleanAfterRestore)
{
    auto [benchmark, design] = GetParam();
    SimConfig cfg = configs::base(benchmark);
    cfg.seed = 1234 + static_cast<std::uint64_t>(design);
    switch (design) {
      case 0:
        break;
      case 1:
        cfg = configs::withSegmentation(cfg, 4, 8,
                                        SegAllocPolicy::SelfCircular);
        break;
      case 2:
        cfg = configs::withLoadBuffer(cfg, 2);
        break;
    }
    // Randomize the snapshot point per parameter combo so the drain
    // exercises many different in-flight shapes across the suite.
    Rng rng(cfg.seed * 1000003 + static_cast<std::uint64_t>(design));
    const std::uint64_t kDetailed = 8000 + rng.below(8000);
    const std::uint64_t kRemainder = 12000;
    std::string ckpt = ::testing::TempDir() + "/oracle_" + benchmark +
                       "_" + std::to_string(design) + ".ckpt";

    {
        // Detailed run to an arbitrary mid-trace point, then quiesce
        // and snapshot. This exercises save-after-execution, not just
        // the save-after-fast-forward path the CLI uses.
        StatSet stats;
        Core core(cfg.core, cfg.lsq, cfg.memory,
                  profileFor(cfg.benchmark), cfg.seed, stats);
        core.run(kDetailed);
        core.drain();
        saveCheckpoint(core, cfg, ckpt);
    }

    StatSet stats;
    Core core(cfg.core, cfg.lsq, cfg.memory,
              profileFor(cfg.benchmark), cfg.seed, stats);
    LsqChecker checker(cfg.lsq);
    core.lsq().attachChecker(&checker);
    loadCheckpoint(core, cfg, ckpt);
    EXPECT_GE(core.committed(), kDetailed);
    core.run(core.committed() + kRemainder);
    EXPECT_GT(checker.opsChecked(), 0u);
    EXPECT_EQ(checker.mismatches(), 0u) << checker.report();
    core.lsq().attachChecker(nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, CheckpointedOracleFuzz,
    ::testing::Combine(::testing::Values(std::string("bzip"),
                                         std::string("gcc"),
                                         std::string("art")),
                       ::testing::Values(0, 1, 2)));
