/**
 * @file
 * Unit tests for src/common: Rng, SatCounter, stats, tables, strfmt.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace lsqscale;

// ----------------------------------------------------------- Rng ------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3u);
}

TEST(Rng, ZeroSeedIsValid)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng r(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        std::uint64_t v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
        EXPECT_FALSE(r.chance(-0.5));
        EXPECT_TRUE(r.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMean)
{
    Rng r(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.25));
    // Mean of geometric (failures before success) = (1-p)/p = 3.
    EXPECT_NEAR(sum / n, 3.0, 0.15);
}

TEST(Rng, GeometricCapRespected)
{
    Rng r(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(r.geometric(0.001, 10), 10u);
    // Degenerate p never loops forever.
    EXPECT_EQ(r.geometric(0.0, 5), 5u);
    EXPECT_EQ(r.geometric(1.0), 0u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(31);
    Rng child = a.split();
    unsigned same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == child.next();
    EXPECT_LT(same, 3u);
}

TEST(Rng, StateRoundTrip)
{
    Rng a(37);
    a.next();
    std::uint64_t s = a.state();
    std::uint64_t v = a.next();
    Rng b(1);
    b.setState(s);
    EXPECT_EQ(b.next(), v);
}

TEST(Rng, MixDecorrelatesAdjacentSeeds)
{
    // The original motivation: nearby PCs as raw seeds must not yield
    // structured early draws. Check the first uniform() of 4-spaced
    // seeds covers the unit interval reasonably.
    int buckets[10] = {0};
    for (std::uint64_t pc = 0x400000; pc < 0x400000 + 4000; pc += 4) {
        Rng r(pc * 0x9e3779b97f4a7c15ULL ^ 0x51ed2701);
        // Skip class/region draws like the generator does.
        r.uniform();
        r.uniform();
        double a = r.uniform();
        ++buckets[static_cast<int>(a * 10)];
    }
    for (int b = 0; b < 10; ++b)
        EXPECT_GT(buckets[b], 30) << "bucket " << b;
}

// ---------------------------------------------------- SatCounter ------

TEST(SatCounter, SaturatesHigh)
{
    SatCounter c(2);
    EXPECT_TRUE(c.increment());
    EXPECT_TRUE(c.increment());
    EXPECT_TRUE(c.increment());
    EXPECT_FALSE(c.increment());
    EXPECT_EQ(c.value(), 3);
    EXPECT_TRUE(c.saturatedHigh());
}

TEST(SatCounter, SaturatesLow)
{
    SatCounter c(2, 1);
    EXPECT_TRUE(c.decrement());
    EXPECT_FALSE(c.decrement());
    EXPECT_EQ(c.value(), 0);
    EXPECT_TRUE(c.isZero());
}

TEST(SatCounter, ThreeBitRange)
{
    SatCounter c(3);
    for (int i = 0; i < 20; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 7);
    for (int i = 0; i < 20; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0);
}

TEST(SatCounter, TakenThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken());  // 0
    c.increment();
    EXPECT_FALSE(c.taken());  // 1
    c.increment();
    EXPECT_TRUE(c.taken());   // 2
    c.increment();
    EXPECT_TRUE(c.taken());   // 3
}

TEST(SatCounter, SetClamps)
{
    SatCounter c(2);
    c.set(200);
    EXPECT_EQ(c.value(), 3);
    c.set(1);
    EXPECT_EQ(c.value(), 1);
}

TEST(SatCounter, ResetZeroes)
{
    SatCounter c(3, 5);
    c.reset();
    EXPECT_TRUE(c.isZero());
}

// --------------------------------------------------------- Stats ------

TEST(Stats, CounterStartsAtZero)
{
    StatSet s;
    EXPECT_EQ(s.value("nothing"), 0u);
    EXPECT_FALSE(s.hasCounter("nothing"));
}

TEST(Stats, CounterIncrements)
{
    StatSet s;
    s.counter("a").inc();
    s.counter("a").inc(4);
    EXPECT_EQ(s.value("a"), 5u);
    EXPECT_TRUE(s.hasCounter("a"));
}

TEST(Stats, RatioIsNanOnZeroDenominator)
{
    StatSet s;
    s.counter("num").inc(10);
    // "No data" must not read as a true zero ratio: a never-registered
    // or zero denominator yields NaN so callers are forced to guard.
    EXPECT_TRUE(std::isnan(s.ratio("num", "den")));
    s.counter("den");
    EXPECT_TRUE(std::isnan(s.ratio("num", "den")));
    s.counter("den").inc(4);
    EXPECT_DOUBLE_EQ(s.ratio("num", "den"), 2.5);
}

TEST(Stats, ResetAllClears)
{
    StatSet s;
    s.counter("x").inc(3);
    s.histogram("h").sample(5);
    s.resetAll();
    EXPECT_EQ(s.value("x"), 0u);
    EXPECT_EQ(s.getHistogram("h").samples(), 0u);
}

TEST(Stats, DumpContainsNames)
{
    StatSet s;
    s.counter("alpha").inc(7);
    std::string d = s.dump();
    EXPECT_NE(d.find("alpha 7"), std::string::npos);
}

TEST(Stats, CounterNamesSorted)
{
    StatSet s;
    s.counter("b");
    s.counter("a");
    auto names = s.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
}

TEST(Stats, CounterNamesOrderStableAcrossTouches)
{
    // The order is the sorted name order, independent of registration
    // or increment order — JSON/CSV column layouts depend on this.
    StatSet s;
    s.counter("z.last").inc(1);
    s.counter("a.first");
    s.counter("m.middle").inc(5);
    auto before = s.counterNames();
    s.counter("a.first").inc(100);
    s.counter("z.last").inc(2);
    auto after = s.counterNames();
    EXPECT_EQ(before, after);
    ASSERT_EQ(after.size(), 3u);
    EXPECT_EQ(after[0], "a.first");
    EXPECT_EQ(after[1], "m.middle");
    EXPECT_EQ(after[2], "z.last");
}

TEST(Histogram, MeanOfSamples)
{
    Histogram h(16);
    h.sample(2);
    h.sample(4);
    h.sample(6);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.samples(), 3u);
}

TEST(Histogram, OverflowBucket)
{
    Histogram h(4);
    h.sample(100);
    EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, FractionSums)
{
    Histogram h(8);
    for (std::uint64_t i = 0; i < 8; ++i)
        h.sample(i);
    double total = 0;
    for (std::size_t i = 0; i < h.numBuckets(); ++i)
        total += h.fraction(i);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(8);
    h.sample(2, 3);
    EXPECT_EQ(h.samples(), 3u);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, EmptyMeanIsZero)
{
    Histogram h(8);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, ValueAtMaxBucketBoundary)
{
    // value == numBuckets - 1 lands IN the last bucket; only values
    // beyond it overflow into it. Both must count, neither must drop.
    Histogram h(4);
    h.sample(3);  // exactly the last bucket index
    h.sample(4);  // first overflowing value
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.samples(), 2u);
    EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Histogram, EmptyPercentileIsNan)
{
    Histogram h(8);
    EXPECT_TRUE(std::isnan(h.percentile(0.5)));
    EXPECT_TRUE(std::isnan(h.percentile(0.0)));
    EXPECT_TRUE(std::isnan(h.percentile(1.0)));
}

TEST(Histogram, PercentileWalksBuckets)
{
    Histogram h(8);
    for (std::uint64_t v = 0; v < 4; ++v)
        h.sample(v); // one sample each in buckets 0..3
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 3.0);
    // p=0 means "smallest observed", not bucket 0 unconditionally.
    Histogram top(8);
    top.sample(5);
    EXPECT_DOUBLE_EQ(top.percentile(0.0), 5.0);
}

TEST(Histogram, PercentileOfOverflowedSamples)
{
    Histogram h(4);
    h.sample(100, 10); // all weight in the overflow bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 3.0);
}

// --------------------------------------------------------- Table ------

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t;
    t.header({"name", "value"});
    t.row({"a", "1"});
    t.row({"longer", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header rule present.
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(-0.5, 1), "-0.5");
}

TEST(TextTable, PctFormatting)
{
    EXPECT_EQ(TextTable::pct(0.123), "+12.3%");
    EXPECT_EQ(TextTable::pct(-0.05), "-5.0%");
}

TEST(TextTable, RaggedRowsPadded)
{
    TextTable t;
    t.header({"a", "b", "c"});
    t.row({"x"});
    std::string out = t.render();
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TextTable, SeparatorRendered)
{
    TextTable t;
    t.header({"a"});
    t.row({"1"});
    t.separator();
    t.row({"2"});
    std::string out = t.render();
    // Two rule lines: under the header and the explicit separator.
    auto first = out.find("\n-");
    ASSERT_NE(first, std::string::npos);
    auto second = out.find("\n-", first + 2);
    EXPECT_NE(second, std::string::npos);
}

// -------------------------------------------------------- strfmt ------

TEST(Logging, StrfmtBasics)
{
    EXPECT_EQ(strfmt("x=%d", 42), "x=42");
    EXPECT_EQ(strfmt("%s-%s", "a", "b"), "a-b");
    EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
}

TEST(Logging, StrfmtEmpty)
{
    EXPECT_EQ(strfmt("%s", ""), "");
}

TEST(Logging, AssertDeathOnFalse)
{
    EXPECT_DEATH({ LSQ_ASSERT(false, "boom %d", 3); }, "boom 3");
}

TEST(Logging, PanicDeath)
{
    EXPECT_DEATH({ LSQ_PANIC("fatal condition %s", "x"); },
                 "fatal condition x");
}

// ----------------------------------------------------------- env ------

#include <chrono>
#include <cstdlib>

#include "common/env.hh"
#include "harness/sweep.hh"

TEST(EnvParse, DigitsOnlyTable)
{
    struct Case
    {
        const char *input;
        bool ok;
        std::uint64_t expect;
    };
    // The strtoull-wrap bug class: every historically-misparsed form
    // is here, pinned to rejection.
    const Case cases[] = {
        {"0", true, 0},
        {"1", true, 1},
        {"42", true, 42},
        {"007", true, 7},
        {"18446744073709551615", true, UINT64_MAX},
        {"", false, 0},
        {"-1", false, 0},                    // strtoull wraps this
        {"+5", false, 0},                    // strtoul accepts this
        {" 5", false, 0},                    // strtoul skips the space
        {"5 ", false, 0},
        {"0x10", false, 0},
        {"12a", false, 0},
        {"a12", false, 0},
        {"1.5", false, 0},
        {"18446744073709551616", false, 0},  // 2^64: overflows
        {"99999999999999999999", false, 0},  // strtoull -> ERANGE+MAX
    };
    for (const Case &c : cases) {
        std::uint64_t out = 123456789;
        EXPECT_EQ(parseDigitsU64(c.input, out), c.ok)
            << "input '" << c.input << "'";
        if (c.ok)
            EXPECT_EQ(out, c.expect) << "input '" << c.input << "'";
        else
            EXPECT_EQ(out, 123456789u)
                << "rejected input '" << c.input
                << "' must leave out untouched";
    }
}

TEST(EnvParse, EnvU64FallbackSemantics)
{
    ::setenv("LSQSCALE_TEST_KNOB", "250", 1);
    EXPECT_EQ(envU64("LSQSCALE_TEST_KNOB", 7), 250u);
    ::setenv("LSQSCALE_TEST_KNOB", "-3", 1);
    EXPECT_EQ(envU64("LSQSCALE_TEST_KNOB", 7), 7u);
    ::setenv("LSQSCALE_TEST_KNOB", "", 1);
    EXPECT_EQ(envU64("LSQSCALE_TEST_KNOB", 7), 7u);
    ::unsetenv("LSQSCALE_TEST_KNOB");
    EXPECT_EQ(envU64("LSQSCALE_TEST_KNOB", 7), 7u);
}

TEST(EnvParse, SweepKnobsRejectGarbage)
{
    // LSQSCALE_JOBS / LSQSCALE_WATCHDOG_MS flow through the same
    // digits-only parser; garbage falls back instead of wrapping.
    ::setenv("LSQSCALE_JOBS", "-1", 1);
    unsigned jobs = resolveJobs(0, 64);
    EXPECT_GE(jobs, 1u);
    EXPECT_LE(jobs, 64u);
    ::setenv("LSQSCALE_JOBS", "3", 1);
    EXPECT_EQ(resolveJobs(0, 64), 3u);
    ::unsetenv("LSQSCALE_JOBS");

    ::setenv("LSQSCALE_WATCHDOG_MS", "-1", 1);
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              1234);
    ::setenv("LSQSCALE_WATCHDOG_MS", "+250", 1);
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              1234);
    ::setenv("LSQSCALE_WATCHDOG_MS", "250", 1);
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              250);
    ::setenv("LSQSCALE_WATCHDOG_MS", "0", 1);
    EXPECT_EQ(resolveWatchdog(std::chrono::milliseconds(1234)).count(),
              0);
    ::unsetenv("LSQSCALE_WATCHDOG_MS");
}
