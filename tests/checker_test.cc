/**
 * @file
 * Tests for the memory-ordering oracle (src/check/).
 *
 * Two halves:
 *
 *  1. Mutant detection. The checker observes the LSQ through a narrow
 *     event interface, so a broken LSQ is modeled precisely by the
 *     event stream it would emit. Each mutant below replays the stream
 *     of a deliberately broken implementation — a skipped SQ search, a
 *     dropped violation squash, a mis-ordered load-buffer check, a
 *     wrong forwarder pick — and the test asserts the oracle flags it
 *     with the right CheckErrorKind. Driving events directly keeps the
 *     mutants alive in every build flavor (no #ifdef'd sabotage code
 *     in lsq.cc).
 *
 *  2. Clean runs. Whole-core simulations across the paper's design
 *     points with a checker attached must report zero mismatches:
 *     the oracle accepts every legal behavior of the real machine.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "check/lsq_checker.hh"
#include "common/stats.hh"
#include "core/core.hh"
#include "lsq/lsq_params.hh"
#include "sim/sim_config.hh"
#include "workload/benchmark_profile.hh"

using namespace lsqscale;

namespace {

// Event-building helpers: outcomes as the real Lsq would report them.

LoadIssueOutcome
issued(bool searchedSq, SeqNum forwardedFrom = kNoSeq)
{
    LoadIssueOutcome out;
    out.status = LoadIssueStatus::Accepted;
    out.searchedSq = searchedSq;
    out.forwarded = forwardedFrom != kNoSeq;
    out.forwardedFrom = forwardedFrom;
    return out;
}

StoreSearchOutcome
searched(SeqNum violationLoad = kNoSeq)
{
    StoreSearchOutcome out;
    out.accepted = true;
    out.violationLoad = violationLoad;
    return out;
}

bool
hasKind(const LsqChecker &c, CheckErrorKind kind)
{
    for (const CheckError &e : c.errors())
        if (e.kind == kind)
            return true;
    return false;
}

std::string
kinds(const LsqChecker &c)
{
    std::string out;
    for (const CheckError &e : c.errors()) {
        out += checkErrorKindName(e.kind);
        out += ' ';
    }
    return out;
}

constexpr Addr kA = 0x9000;
constexpr Addr kB = 0x9100;

} // namespace

// ----------------------------------------------------- clean streams --

TEST(CheckerClean, ForwardedLoadCommitsClean)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onStoreAddrReady(0, kA, 5, searched());
    c.onLoadIssue(1, kA, 10, issued(true, 0));
    c.onStoreCommit(0, 20, searched());
    c.onLoadCommit(1);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
    EXPECT_EQ(c.opsChecked(), 6u);
}

TEST(CheckerClean, RejectedEventsAreIgnored)
{
    // Rejected operations (no port / delayed commit) never mutate the
    // Lsq; the hooks still fire and the checker must not advance its
    // shadow state on them.
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);

    StoreSearchOutcome noPort;   // accepted == false
    c.onStoreAddrReady(0, kA, 4, noPort);
    c.onStoreCommit(0, 5, noPort);

    LoadIssueOutcome stalled;
    stalled.status = LoadIssueStatus::NoSqPort;
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 6, stalled);

    c.onStoreAddrReady(0, kA, 7, searched());
    c.onLoadIssue(1, kA, 9, issued(true, 0));
    c.onStoreCommit(0, 12, searched());
    c.onLoadCommit(1);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
}

TEST(CheckerClean, PairSchemeSquashReplayAccepted)
{
    // Pair-predictor scheme: a premature load is caught at the store's
    // commit, squashed, and replayed. The full legal sequence must
    // check clean end to end.
    LsqParams p;
    p.checkViolationsAtCommit = true;
    LsqChecker c(p);

    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 5, issued(false));      // gated off, premature
    c.onStoreAddrReady(0, kA, 10, searched());   // no search in pair mode
    c.onStoreCommit(0, 20, searched(1));         // commit-time detection
    c.onSquash(1);                               // core squashes the load
    c.onAllocateLoad(1, 0x104);                  // replay
    c.onLoadIssue(1, kA, 25, issued(true));      // store gone: from memory
    c.onLoadCommit(1);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
}

// -------------------------------------------------- mutant: no search --

// Mutant A1: the LSQ "searches" the SQ but its CAM match is broken —
// an older matching addr-valid store is missed at issue time.
TEST(CheckerMutant, BrokenSqSearchFlaggedAtIssue)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onStoreAddrReady(0, kA, 5, searched());
    c.onLoadIssue(1, kA, 10, issued(true));   // searched, found nothing
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedForward)) << kinds(c);
    const CheckError &e = c.errors().front();
    EXPECT_EQ(e.seq, 1u);
    EXPECT_EQ(e.expected, 0u);
}

// Mutant A2: the SQ search is skipped outright (broken gating) and no
// later violation check compensates. Issue time cannot flag this —
// skipping is legal under prediction — so the decisive check is the
// golden-memory comparison at commit.
TEST(CheckerMutant, SkippedSqSearchFlaggedAtCommit)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onStoreAddrReady(0, kA, 5, searched());
    c.onLoadIssue(1, kA, 10, issued(false));  // never searched
    EXPECT_EQ(c.mismatches(), 0u) << c.report();

    c.onStoreCommit(0, 20, searched());
    c.onLoadCommit(1);   // committed a stale value: store was visible
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedForward)) << kinds(c);
}

// ---------------------------------------------- mutant: dropped squash --

// Mutant B: a load executes before an older store's AGEN and the
// violation machinery never reports it. Both defenses must fire: the
// reference violator comparison at the store's search, and the golden
// memory comparison at the load's commit.
TEST(CheckerMutant, DroppedViolationFlaggedTwice)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 5, issued(true));      // premature, clean so far
    EXPECT_EQ(c.mismatches(), 0u) << c.report();

    c.onStoreAddrReady(0, kA, 10, searched());  // mutant: reports nothing
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedStoreLoadDetection))
        << kinds(c);

    c.onStoreCommit(0, 20, searched());
    c.onLoadCommit(1);                          // stale value committed
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedStoreLoadViolation))
        << kinds(c);
    EXPECT_GE(c.mismatches(), 2u);
}

// Mutant B2 (pair scheme): commit-time detection is dropped.
TEST(CheckerMutant, DroppedCommitTimeDetectionFlagged)
{
    LsqParams p;
    p.checkViolationsAtCommit = true;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 5, issued(false));
    c.onStoreAddrReady(0, kA, 10, searched());
    c.onStoreCommit(0, 20, searched());   // mutant: no violator reported
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedStoreLoadDetection))
        << kinds(c);
}

// Mutant B3: the violation CAM reports a violator that never touched
// the store's address — an aliasing/mask bug selecting the wrong LQ
// entry. The reference rule expects no violator, so the report itself
// is the error.
TEST(CheckerMutant, PhantomViolationFlagged)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kB, 5, issued(true));       // different address
    c.onStoreAddrReady(0, kA, 10, searched(1));  // phantom violator
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::PhantomStoreLoadViolation))
        << kinds(c);
}

// ------------------------------------------- mutant: wrong forwarder --

// Mutant C: the CAM priority encoder picks the *oldest* matching store
// instead of the youngest older one.
TEST(CheckerMutant, WrongForwarderFlagged)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateStore(1, 0x104);
    c.onAllocateLoad(2, 0x108);
    c.onStoreAddrReady(0, kA, 2, searched());
    c.onStoreAddrReady(1, kA, 4, searched());
    c.onLoadIssue(2, kA, 10, issued(true, 0));   // should be store 1
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::WrongForwarder)) << kinds(c);
    const CheckError &e = c.errors().front();
    EXPECT_EQ(e.expected, 1u);
    EXPECT_EQ(e.actual, 0u);
}

// Mutant C2: forwarding from thin air — no older matching store exists.
TEST(CheckerMutant, PhantomForwardFlagged)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateStore(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onStoreAddrReady(0, kB, 2, searched());    // different address
    c.onLoadIssue(1, kA, 10, issued(true, 0));
    EXPECT_TRUE(hasKind(c, CheckErrorKind::PhantomForward)) << kinds(c);
}

// -------------------------------------- mutant: load-load mis-order ---

// Mutant D: the load buffer (or LQ load-load search) fails to flag a
// younger same-address load that issued early. Neither load's issue
// reports a violation, both commit — the commit-order invariant fires.
TEST(CheckerMutant, UndetectedLoadLoadOrderFlagged)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 3, issued(true));   // younger issues first
    c.onLoadIssue(0, kA, 8, issued(true));   // mutant: no violation
    c.onLoadCommit(0);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
    c.onLoadCommit(1);
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::UndetectedLoadLoadOrder))
        << kinds(c);
}

// With ordering deliberately unenforced (ablation), the same stream is
// architecturally acceptable and must check clean.
TEST(CheckerMutant, LoadLoadOrderIgnoredWhenPolicyNone)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::None;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 3, issued(true));
    c.onLoadIssue(0, kA, 8, issued(true));
    c.onLoadCommit(0);
    c.onLoadCommit(1);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
}

// Mutant D2: the ordering check cries wolf — reports a violating pair
// that does not exist (different addresses).
TEST(CheckerMutant, PhantomLoadLoadViolationFlagged)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kB, 3, issued(true));   // younger, other address
    LoadIssueOutcome out = issued(true);
    out.llViolations.push_back(1);           // mutant: bogus report
    c.onLoadIssue(0, kA, 8, out);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::PhantomLoadLoadViolation))
        << kinds(c);
}

// ---------------------------------------- mutant: probe snoop ---------

// Clean reference stream: a probe hits a vulnerable load, the LSQ
// reports it, the core squashes and replays. Every step is legal.
TEST(CheckerClean, ProbeSquashReplayAccepted)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 3, issued(true));   // OOO past load 0: vulnerable
    c.onInvalidate(kA, 6, searched(1));      // snoop reports the victim
    c.onSquash(1);                           // core squashes from it
    c.onAllocateLoad(1, 0x104);              // replay
    c.onLoadIssue(0, kB, 8, issued(true));
    c.onLoadIssue(1, kA, 10, issued(true));  // re-executes after the write
    c.onLoadCommit(0);
    c.onLoadCommit(1);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
}

TEST(CheckerClean, RejectedProbeIsIgnored)
{
    // A rejected delivery (no LQ port) is retried by the coherence
    // agent; it is not a visibility point and must not create a squash
    // obligation.
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onLoadIssue(0, kA, 2, issued(true));
    StoreSearchOutcome noPort;   // accepted == false
    c.onInvalidate(kA, 4, noPort);
    c.onLoadCommit(0);
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
}

// Mutant P1: the load-buffer CAM misses on a probe — a vulnerable
// load is resident but the snoop reports no victim.
TEST(CheckerMutant, ProbeSnoopMissFlagged)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 3, issued(true));   // vulnerable resident
    c.onInvalidate(kA, 6, searched());       // mutant: no victim found
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedProbeSquash))
        << kinds(c);
    EXPECT_EQ(c.errors().front().expected, 1u);
}

// Mutant P1b: same bug on a conventional design — the invalidation LQ
// walk fails to report the outstanding load.
TEST(CheckerMutant, ProbeWalkMissFlagged)
{
    LsqParams p;   // SearchLoadQueue
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onLoadIssue(0, kA, 2, issued(true));
    c.onInvalidate(kA, 5, searched());       // mutant: walk found nothing
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedProbeSquash))
        << kinds(c);
}

// Mutant P2: the snoop reports the right victim but the core drops
// the squash — the victim retires with its stale value. Both the
// pending-obligation check and the end-to-end remote-write rule fire.
TEST(CheckerMutant, DroppedProbeSquashFlaggedAtCommit)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(1, kA, 3, issued(true));
    c.onInvalidate(kA, 6, searched(1));      // agreement: squash owed
    EXPECT_EQ(c.mismatches(), 0u) << c.report();
    c.onLoadIssue(0, kB, 8, issued(true));   // mutant: no squash happens
    c.onLoadCommit(0);
    c.onLoadCommit(1);                       // stale value retires
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::MissedProbeSquash))
        << kinds(c);
}

// Mutant P3: the snoop cries wolf — an in-order-issued load (never in
// the buffer, not vulnerable) is reported as a probe victim.
TEST(CheckerMutant, SpuriousProbeSquashFlagged)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onLoadIssue(0, kA, 2, issued(true));   // oldest: issued in order
    c.onInvalidate(kA, 5, searched(0));      // mutant: phantom victim
    EXPECT_GE(c.mismatches(), 1u);
    EXPECT_TRUE(hasKind(c, CheckErrorKind::SpuriousProbeSquash))
        << kinds(c);
}

// Mutant P3b: over-squash — the snoop selects a load *older* than the
// oldest vulnerable one, wiping work the probe did not invalidate.
TEST(CheckerMutant, ProbeOverSquashFlagged)
{
    LsqParams p;
    p.loadCheck = LoadCheckPolicy::LoadBuffer;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onAllocateLoad(2, 0x108);
    c.onLoadIssue(1, kA, 3, issued(true));   // the true victim
    c.onLoadIssue(2, kA, 4, issued(true));
    c.onInvalidate(kA, 6, searched(0));      // mutant: squashes seq 0
    EXPECT_TRUE(hasKind(c, CheckErrorKind::SpuriousProbeSquash))
        << kinds(c);
}

// ------------------------------------------- mutant: broken protocol --

TEST(CheckerMutant, OutOfOrderCommitFlagged)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onAllocateLoad(1, 0x104);
    c.onLoadIssue(0, kA, 2, issued(true));
    c.onLoadIssue(1, kA, 4, issued(true));
    c.onLoadCommit(1);   // mutant: commits past the LQ head
    EXPECT_TRUE(hasKind(c, CheckErrorKind::BrokenProtocol)) << kinds(c);
}

TEST(CheckerMutant, DoubleIssueFlagged)
{
    LsqParams p;
    LsqChecker c(p);
    c.onAllocateLoad(0, 0x100);
    c.onLoadIssue(0, kA, 2, issued(true));
    c.onLoadIssue(0, kA, 5, issued(true));   // no squash in between
    EXPECT_TRUE(hasKind(c, CheckErrorKind::BrokenProtocol)) << kinds(c);
}

// --------------------------------------------- whole-core clean runs --

namespace {

/**
 * Run @p insts instructions of the synthetic workload on a real Core
 * with a checker attached; the oracle must stay silent.
 */
void
runChecked(const SimConfig &cfg, std::uint64_t insts)
{
    StatSet stats;
    Core core(cfg.core, cfg.lsq, cfg.memory, profileFor(cfg.benchmark),
              cfg.seed, stats);
    LsqChecker checker(cfg.lsq);
    core.lsq().attachChecker(&checker);
    core.run(insts);
    core.lsq().attachChecker(nullptr);
    EXPECT_EQ(checker.mismatches(), 0u) << checker.report();
    EXPECT_GT(checker.opsChecked(), insts / 4)
        << "checker saw implausibly few memory events";
}

} // namespace

TEST(CheckerCoreRuns, ConventionalBaseline)
{
    runChecked(configs::base("bzip"), 6000);
}

TEST(CheckerCoreRuns, SegmentedNoSelfCircular)
{
    runChecked(configs::withSegmentation(configs::base("bzip"), 4, 16,
                                         SegAllocPolicy::NoSelfCircular),
               6000);
}

TEST(CheckerCoreRuns, SegmentedSelfCircular)
{
    runChecked(configs::withSegmentation(configs::base("mcf"), 4, 16,
                                         SegAllocPolicy::SelfCircular),
               6000);
}

TEST(CheckerCoreRuns, PairPredictor)
{
    runChecked(configs::withPairPredictor(configs::base("bzip")), 6000);
}

TEST(CheckerCoreRuns, LoadBuffer)
{
    runChecked(configs::withLoadBuffer(configs::base("vortex"), 2), 6000);
}

TEST(CheckerCoreRuns, AllTechniquesSegmented)
{
    runChecked(configs::withSegmentation(
                   configs::allTechniques(configs::base("bzip")), 4, 16,
                   SegAllocPolicy::SelfCircular),
               6000);
}

TEST(CheckerCoreRuns, CombinedQueue)
{
    runChecked(configs::withCombinedQueue(configs::base("bzip"), 32),
               6000);
}

TEST(CheckerCoreRuns, InOrderLoads)
{
    runChecked(configs::withInOrderLoads(configs::base("bzip"), true),
               6000);
}
