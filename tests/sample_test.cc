/**
 * @file
 * Unit tests for src/sample: checkpoint round-trip bit-identity,
 * corrupted-file rejection, fast-forward determinism under a thread
 * pool, and the interval sampler's error bound (docs/SAMPLING.md).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include <fstream>
#include <string>
#include <vector>

#include "harness/job_pool.hh"
#include "sample/checkpoint.hh"
#include "sample/sampler.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

using namespace lsqscale;

namespace {

/**
 * The sample layer's behaviour must not depend on the harness
 * environment: these tests compare absolute instruction counts and
 * counter values, so an inherited LSQSCALE_INSTS / LSQSCALE_SAMPLE
 * would silently change what "full" means.
 */
class SampleTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        unsetenv("LSQSCALE_INSTS");
        unsetenv("LSQSCALE_SAMPLE");
        unsetenv("LSQSCALE_INTERVAL");
    }
};

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "/" + name;
}

std::string
readBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

void
writeBytes(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Save a checkpoint at @p ffInsts for @p cfg; returns its path. */
std::string
saveAt(SimConfig cfg, std::uint64_t ffInsts, const std::string &name)
{
    cfg.ffInsts = ffInsts;
    cfg.saveCkptPath = tmpPath(name);
    Simulator sim(cfg);
    sim.run();
    return cfg.saveCkptPath;
}

/**
 * The core bit-identity contract: measuring M instructions after
 * restoring a checkpoint must equal measuring M instructions after
 * fast-forwarding to the same boundary in one process — cycle counts,
 * retired-op counts, and every architectural/search counter.
 */
void
expectRoundTripIdentity(const SimConfig &base, const std::string &tag)
{
    const std::uint64_t kFf = 30000;
    const std::uint64_t kMeasure = 15000;
    std::string ckpt = saveAt(base, kFf, "rt_" + tag + ".ckpt");

    SimConfig viaFf = base;
    viaFf.ffInsts = kFf;
    viaFf.instructions = kMeasure;
    SimResult a = Simulator(viaFf).run();

    SimConfig viaLoad = base;
    viaLoad.loadCkptPath = ckpt;
    viaLoad.instructions = kMeasure;
    SimResult b = Simulator(viaLoad).run();

    EXPECT_EQ(a.committed, b.committed) << tag;
    EXPECT_EQ(a.cycles, b.cycles) << tag;
    std::vector<std::string> namesA = a.stats.counterNames();
    std::vector<std::string> namesB = b.stats.counterNames();
    EXPECT_EQ(namesA, namesB) << tag;
    for (const std::string &name : namesA)
        EXPECT_EQ(a.stats.value(name), b.stats.value(name))
            << tag << ": counter " << name;
}

} // namespace

// ---------------------------------------------- round-trip (3 pts) ----

TEST_F(SampleTest, RoundTripBitIdentityBase)
{
    expectRoundTripIdentity(configs::base("bzip"), "base");
}

TEST_F(SampleTest, RoundTripBitIdentitySegmented)
{
    expectRoundTripIdentity(
        configs::withSegmentation(configs::base("gcc"), 4, 8,
                                  SegAllocPolicy::SelfCircular),
        "segmented");
}

TEST_F(SampleTest, RoundTripBitIdentityLoadBuffer)
{
    expectRoundTripIdentity(configs::withLoadBuffer(configs::base("art"),
                                                    2),
                            "load-buffer");
}

TEST_F(SampleTest, RoundTripBitIdentityPairPredictor)
{
    expectRoundTripIdentity(
        configs::withPairPredictor(configs::base("mcf")), "pair");
}

// ------------------------------------------- one ckpt, many designs ----

TEST_F(SampleTest, CheckpointServesDesignSweep)
{
    // The functional fingerprint deliberately excludes LsqParams and
    // core widths: one warmed image must serve every design point of
    // a sweep. Restoring the base-config checkpoint into a segmented
    // LSQ must load cleanly and still match its own ff-twin.
    SimConfig base = configs::base("gzip");
    std::string ckpt = saveAt(base, 30000, "sweep.ckpt");

    SimConfig seg = configs::withSegmentation(base, 4, 8,
                                              SegAllocPolicy::SelfCircular);
    seg.loadCkptPath = ckpt;
    seg.instructions = 15000;
    SimResult viaLoad = Simulator(seg).run();

    SimConfig segFf = configs::withSegmentation(base, 4, 8,
                                                SegAllocPolicy::SelfCircular);
    segFf.ffInsts = 30000;
    segFf.instructions = 15000;
    SimResult viaFf = Simulator(segFf).run();

    EXPECT_EQ(viaLoad.cycles, viaFf.cycles);
    EXPECT_EQ(viaLoad.committed, viaFf.committed);
}

// ----------------------------------------------------- rejection ------

TEST_F(SampleTest, RejectsMissingFile)
{
    SimConfig cfg = configs::base("bzip");
    cfg.loadCkptPath = tmpPath("does_not_exist.ckpt");
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
}

TEST_F(SampleTest, RejectsZeroLengthFile)
{
    // A crashed --save-ckpt (or a full disk) can leave a zero-length
    // file behind; loading it must fail cleanly, not abort.
    SimConfig cfg = configs::base("bzip");
    cfg.loadCkptPath = tmpPath("empty.ckpt");
    writeBytes(cfg.loadCkptPath, "");
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
    EXPECT_THROW(inspectCheckpoint(cfg.loadCkptPath), SerialError);
}

TEST_F(SampleTest, RejectsTruncatedMidHeaderFile)
{
    // Cut inside the fixed header (after the magic + version but
    // before the metadata strings complete): both the loader and the
    // inspector must throw, not read past the end or abort.
    SimConfig cfg = configs::base("bzip");
    std::string ckpt = saveAt(cfg, 5000, "midheader.ckpt");
    std::string bytes = readBytes(ckpt);
    ASSERT_GT(bytes.size(), 16u);
    writeBytes(ckpt, bytes.substr(0, 16));

    cfg.loadCkptPath = ckpt;
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
    EXPECT_THROW(inspectCheckpoint(ckpt), SerialError);
}

TEST_F(SampleTest, RejectsTruncatedFile)
{
    SimConfig cfg = configs::base("bzip");
    std::string ckpt = saveAt(cfg, 5000, "trunc.ckpt");
    std::string bytes = readBytes(ckpt);
    ASSERT_GT(bytes.size(), 100u);
    writeBytes(ckpt, bytes.substr(0, bytes.size() / 2));

    cfg.loadCkptPath = ckpt;
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
}

TEST_F(SampleTest, RejectsCorruptedPayload)
{
    SimConfig cfg = configs::base("bzip");
    std::string ckpt = saveAt(cfg, 5000, "corrupt.ckpt");
    std::string bytes = readBytes(ckpt);
    // Flip one bit deep inside the payload: the CRC must catch it.
    bytes[bytes.size() - 40] ^= 0x01;
    writeBytes(ckpt, bytes);

    cfg.loadCkptPath = ckpt;
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
    EXPECT_FALSE(inspectCheckpoint(ckpt).crcOk);
}

TEST_F(SampleTest, RejectsWrongVersion)
{
    SimConfig cfg = configs::base("bzip");
    std::string ckpt = saveAt(cfg, 5000, "version.ckpt");
    std::string bytes = readBytes(ckpt);
    bytes[8] = 0x7f; // version field follows the 8-byte magic
    writeBytes(ckpt, bytes);

    cfg.loadCkptPath = ckpt;
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
}

TEST_F(SampleTest, RejectsBadMagic)
{
    SimConfig cfg = configs::base("bzip");
    std::string ckpt = saveAt(cfg, 5000, "magic.ckpt");
    std::string bytes = readBytes(ckpt);
    bytes[0] = 'X';
    writeBytes(ckpt, bytes);

    cfg.loadCkptPath = ckpt;
    cfg.instructions = 1000;
    Simulator sim(cfg);
    EXPECT_THROW(sim.run(), SerialError);
}

TEST_F(SampleTest, RejectsFunctionalConfigMismatch)
{
    // Same trace generator seed, different benchmark: the functional
    // fingerprint must refuse the restore.
    std::string ckpt = saveAt(configs::base("bzip"), 5000, "fp.ckpt");
    SimConfig other = configs::base("gcc");
    other.loadCkptPath = ckpt;
    other.instructions = 1000;
    Simulator sim(other);
    EXPECT_THROW(sim.run(), SerialError);
}

// ------------------------------------------------------- inspect ------

TEST_F(SampleTest, InspectReportsHeaderAndSections)
{
    SimConfig cfg = configs::base("mcf");
    cfg.seed = 77;
    std::string ckpt = saveAt(cfg, 12000, "inspect.ckpt");

    CheckpointInfo info = inspectCheckpoint(ckpt);
    EXPECT_TRUE(info.crcOk);
    EXPECT_EQ(info.meta.version, kCkptVersion);
    EXPECT_EQ(info.meta.benchmark, "mcf");
    EXPECT_EQ(info.meta.seed, 77u);
    EXPECT_EQ(info.meta.instCount, 12000u);
    EXPECT_EQ(info.meta.fingerprint, functionalFingerprint(cfg));

    ASSERT_EQ(info.sections.size(), 6u);
    EXPECT_EQ(info.sections[0].tag, "CORE");
    EXPECT_EQ(info.sections[1].tag, "STRM");
    EXPECT_EQ(info.sections[2].tag, "MEM ");
    EXPECT_EQ(info.sections[3].tag, "BP  ");
    EXPECT_EQ(info.sections[4].tag, "SSP ");
    EXPECT_EQ(info.sections[5].tag, "LSQ ");
    for (const CheckpointSectionInfo &sec : info.sections)
        EXPECT_GT(sec.bytes, 0u) << sec.tag;
}

// ----------------------------------------- parallel determinism -------

TEST_F(SampleTest, FastForwardDeterministicUnderJobPool)
{
    // Checkpoints written by concurrent workers (the sweep harness
    // under LSQSCALE_JOBS>1) must be byte-identical to a serially
    // written one: fast-forward may not depend on thread schedule.
    std::string serial = saveAt(configs::base("twolf"), 25000,
                                "par_serial.ckpt");

    const unsigned kJobs = 4;
    std::vector<std::string> paths;
    for (unsigned i = 0; i < kJobs; ++i)
        paths.push_back(tmpPath("par_" + std::to_string(i) + ".ckpt"));
    JobPool pool(kJobs);
    for (unsigned i = 0; i < kJobs; ++i)
        pool.submit([i, &paths] {
            SimConfig cfg = configs::base("twolf");
            cfg.ffInsts = 25000;
            cfg.saveCkptPath = paths[i];
            Simulator sim(cfg);
            sim.run();
        });
    pool.wait();

    std::string ref = readBytes(serial);
    ASSERT_FALSE(ref.empty());
    for (const std::string &p : paths)
        EXPECT_EQ(readBytes(p), ref) << p;
}

// ------------------------------------------------- spec parsing -------

TEST_F(SampleTest, ParseSampleSpec)
{
    SampleSpec s;
    ASSERT_TRUE(parseSampleSpec("2000:500:500", s));
    EXPECT_EQ(s.ffInsts, 2000u);
    EXPECT_EQ(s.warmInsts, 500u);
    EXPECT_EQ(s.measureInsts, 500u);
    EXPECT_TRUE(s.enabled());
    EXPECT_EQ(formatSampleSpec(s), "2000:500:500");

    ASSERT_TRUE(parseSampleSpec("0:0:1", s));
    EXPECT_EQ(s.ffInsts, 0u);
    EXPECT_EQ(s.measureInsts, 1u);

    EXPECT_FALSE(parseSampleSpec("", s));
    EXPECT_FALSE(parseSampleSpec("2000", s));
    EXPECT_FALSE(parseSampleSpec("2000:500", s));
    EXPECT_FALSE(parseSampleSpec("2000:500:0", s));   // D must be > 0
    EXPECT_FALSE(parseSampleSpec("2000:500:500:1", s));
    EXPECT_FALSE(parseSampleSpec("2000:500:500x", s));
    EXPECT_FALSE(parseSampleSpec("-1:500:500", s));
    EXPECT_FALSE(parseSampleSpec("a:b:c", s));
}

TEST_F(SampleTest, SampleSpecDisabledByDefault)
{
    SampleSpec s;
    EXPECT_FALSE(s.enabled());
}

// --------------------------------------------------- sampled IPC ------

namespace {

/** Full-detail and sampled IPC for @p benchmark at @p insts. */
void
expectSampledIpcWithin(const std::string &benchmark, double boundPct)
{
    const std::uint64_t kInsts = 300000;
    SimConfig full = configs::base(benchmark);
    full.instructions = kInsts;
    SimResult f = Simulator(full).run();

    SimConfig sampled = configs::base(benchmark);
    sampled.instructions = kInsts;
    ASSERT_TRUE(parseSampleSpec("2000:500:500", sampled.sample));
    SimResult s = Simulator(sampled).run();

    EXPECT_TRUE(s.sampling.enabled);
    EXPECT_GT(s.sampling.intervals(), 50u);
    EXPECT_GT(s.sampling.ffInsts, 0u);
    // Only the measure windows are timed...
    EXPECT_LT(s.committed, kInsts / 2);
    EXPECT_EQ(s.committed, s.sampling.measuredInsts);
    EXPECT_EQ(s.cycles, s.sampling.measuredCycles);
    // ...yet the estimate lands near the full-detail IPC.
    double err = std::abs(s.ipc() - f.ipc()) / f.ipc() * 100.0;
    EXPECT_LT(err, boundPct)
        << benchmark << ": sampled " << s.ipc() << " vs full "
        << f.ipc();
    // And the reported confidence interval is self-consistent.
    EXPECT_GT(s.sampling.ipcMean, 0.0);
    EXPECT_GT(s.sampling.ipcErr95, 0.0);
}

} // namespace

TEST_F(SampleTest, SampledIpcTracksFullDetailBzip)
{
    expectSampledIpcWithin("bzip", 5.0);
}

TEST_F(SampleTest, SampledIpcTracksFullDetailMcf)
{
    expectSampledIpcWithin("mcf", 5.0);
}

TEST_F(SampleTest, SampledRunStillEmitsIntervalSeries)
{
    // Interval observability (PR 3) must survive sampling: a sampled
    // run with --interval-stats produces a non-empty series.
    SimConfig cfg = configs::base("bzip");
    cfg.instructions = 60000;
    cfg.intervalCycles = 2000;
    ASSERT_TRUE(parseSampleSpec("2000:500:500", cfg.sample));
    SimResult r = Simulator(cfg).run();
    EXPECT_TRUE(r.sampling.enabled);
    EXPECT_FALSE(r.intervals.empty());
}

TEST_F(SampleTest, SampledRunIsReproducible)
{
    SimConfig cfg = configs::base("equake");
    cfg.instructions = 60000;
    ASSERT_TRUE(parseSampleSpec("2000:500:500", cfg.sample));
    SimResult a = Simulator(cfg).run();
    SimResult b = Simulator(cfg).run();
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.sampling.intervalIpc, b.sampling.intervalIpc);
}
