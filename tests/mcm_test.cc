/**
 * @file
 * Litmus corpus for src/mcm: the full fig7 design grid runs every
 * scenario with the ordering oracle attached and must observe zero
 * forbidden outcomes; synthetic commit logs prove the forbidden-
 * outcome detector itself is not vacuous (docs/CONSISTENCY.md).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mcm/litmus.hh"
#include "sim/sim_config.hh"

using namespace lsqscale;

namespace {

struct Design
{
    const char *name;
    SimConfig cfg;
};

std::vector<Design>
designGrid()
{
    SimConfig base = configs::base("bzip");
    return {
        {"conventional", base},
        {"ports1", configs::withPorts(base, 1)},
        {"lb8", configs::withLoadBuffer(base, 8)},
        {"lb2", configs::withLoadBuffer(base, 2)},
        {"inorder", configs::withInOrderLoads(base, false)},
        {"inorder-always", configs::withInOrderLoads(base, true)},
        {"alltech", configs::allTechniques(base)},
    };
}

LitmusConfig
litmusOn(const SimConfig &design, LitmusTest test,
         unsigned iterations = 32)
{
    LitmusConfig cfg;
    cfg.test = test;
    cfg.core = design.core;
    cfg.lsq = design.lsq;
    cfg.memory = design.memory;
    cfg.iterations = iterations;
    cfg.checked = true;
    return cfg;
}

// Synthetic-log builders for the non-vacuity tests: a commit record
// for the "interesting" op of (iteration, slot), and a remote write.

ProbeCommitRecord
load(unsigned iter, unsigned slot, Addr addr, Cycle exec,
     SeqNum fwd = kNoSeq)
{
    return ProbeCommitRecord{true, 100 + iter, kLitmusPcBase + iter * 16
                             + slot, addr, exec, fwd, exec + 10};
}

ProbeCommitRecord
store(unsigned iter, unsigned slot, Addr addr, SeqNum seq, Cycle commit)
{
    return ProbeCommitRecord{false, seq, kLitmusPcBase + iter * 16
                             + slot, addr, kNoCycle, kNoSeq, commit};
}

RemoteWrite
write(Addr addr, Cycle visibleAt, std::uint64_t value)
{
    return RemoteWrite{addr, visibleAt, value, kNoSeq};
}

void
expectClean(const LitmusResult &r, const char *design, const char *test)
{
    EXPECT_EQ(r.forbidden, 0u)
        << design << "/" << test << ":\n" << r.summary();
    EXPECT_EQ(r.checkMismatches, 0u)
        << design << "/" << test << ":\n" << r.summary();
    EXPECT_GT(r.iterations, 0u) << design << "/" << test;
}

} // namespace

// ----------------------------------------------- the litmus corpus ----

TEST(McmGrid, NoForbiddenOutcomesAcrossDesignGrid)
{
    for (const Design &d : designGrid()) {
        for (LitmusTest test : kAllLitmusTests) {
            LitmusResult r =
                runLitmusSeeds(litmusOn(d.cfg, test), 8, 2);
            expectClean(r, d.name, litmusTestName(test));
        }
    }
}

TEST(McmGrid, LoadBufferDesignSquashesOnProbesAcross64Seeds)
{
    // The acceptance bar: under the load-buffer design the probes do
    // provoke snoop squashes — and the oracle cross-checks every one.
    SimConfig lb8 = configs::withLoadBuffer(configs::base("bzip"), 8);
    LitmusResult r =
        runLitmusSeeds(litmusOn(lb8, LitmusTest::MP, 64), 64, 4);
    expectClean(r, "lb8", "MP");
    EXPECT_GT(r.probeSquashes, 0u) << r.summary();
    EXPECT_GT(r.probesDelivered, r.probeSquashes) << r.summary();
}

TEST(McmGrid, ConventionalDesignAlsoSquashesOnProbes)
{
    // The LQ-walk invalidation path (scheme 2 without a load buffer)
    // protects the conventional design the same way.
    SimConfig base = configs::base("bzip");
    LitmusResult r =
        runLitmusSeeds(litmusOn(base, LitmusTest::CoRR, 64), 16, 4);
    expectClean(r, "conventional", "CoRR");
    EXPECT_GT(r.probeSquashes, 0u) << r.summary();
}

TEST(McmHistogram, AllowedOutcomesAreDiverse)
{
    // If the remote writes never actually interleaved with the local
    // iterations, every scenario would collapse into one outcome label
    // and the forbidden checks would be vacuous at run level too.
    SimConfig base = configs::base("bzip");

    LitmusResult mp = runLitmusSeeds(litmusOn(base, LitmusTest::MP), 8, 2);
    EXPECT_GT(mp.histogram["data==flag"], 0u) << mp.summary();
    EXPECT_GT(mp.histogram["data ahead of flag"], 0u) << mp.summary();

    LitmusResult sb = runLitmusSeeds(litmusOn(base, LitmusTest::SB), 8, 2);
    EXPECT_GT(sb.histogram["y advanced"], 0u) << sb.summary();
    EXPECT_GT(sb.histogram["y unchanged"], 0u) << sb.summary();

    LitmusResult sfv =
        runLitmusSeeds(litmusOn(base, LitmusTest::SFV), 8, 2);
    EXPECT_GT(sfv.histogram["forwarded own store"], 0u) << sfv.summary();
}

// ------------------------------------- detector non-vacuity -----------
// Feed resolveLitmus hand-built logs containing each violation shape
// and require the matching forbidden label. A detector that cannot
// flag a planted violation proves nothing when the real runs pass.

TEST(McmResolve, FlagsStaleDataAfterNewFlagMP)
{
    std::vector<RemoteWrite> writes = {
        write(kLitmusData, 5, 1), write(kLitmusFlag, 10, 1)};
    // Flag load sees the flag write, data load executed before the
    // data write became visible: the forbidden MP interleaving.
    std::vector<ProbeCommitRecord> commits = {
        load(0, kLitmusSlot0, kLitmusFlag, 20),
        load(0, kLitmusSlot1, kLitmusData, 3)};
    LitmusResult r = resolveLitmus(LitmusTest::MP, 1, commits, writes);
    EXPECT_EQ(r.iterations, 1u);
    EXPECT_EQ(r.forbidden, 1u);
    EXPECT_EQ(r.histogram["forbidden: stale data after new flag"], 1u);
}

TEST(McmResolve, FlagsRegressedYSB)
{
    std::vector<RemoteWrite> writes = {write(kLitmusY, 10, 1)};
    std::vector<ProbeCommitRecord> commits = {
        store(0, kLitmusSlot0, kLitmusX, 1, 15),
        load(0, kLitmusSlot1, kLitmusY, 20),   // y = 1
        store(1, kLitmusSlot0, kLitmusX, 2, 25),
        load(1, kLitmusSlot1, kLitmusY, 5)};   // y = 0: regression
    LitmusResult r = resolveLitmus(LitmusTest::SB, 2, commits, writes);
    EXPECT_EQ(r.forbidden, 1u);
    EXPECT_EQ(r.histogram["forbidden: y regressed"], 1u);
    EXPECT_EQ(r.histogram["y advanced"], 1u);
}

TEST(McmResolve, FlagsCausalCycleLB)
{
    // Iteration 0 has zero older triggered writes, yet its load of X
    // observes one — it read the write its own store caused.
    std::vector<RemoteWrite> writes = {write(kLitmusX, 8, 1)};
    std::vector<ProbeCommitRecord> commits = {
        load(0, kLitmusSlot0, kLitmusX, 9),
        store(0, kLitmusSlot1, kLitmusY, 1, 12)};
    LitmusResult r = resolveLitmus(LitmusTest::LB, 1, commits, writes);
    EXPECT_EQ(r.forbidden, 1u);
    EXPECT_EQ(r.histogram["forbidden: causal cycle"], 1u);
}

TEST(McmResolve, FlagsNonMonotoneReadPairCoRR)
{
    std::vector<RemoteWrite> writes = {write(kLitmusX, 10, 1)};
    std::vector<ProbeCommitRecord> commits = {
        load(0, kLitmusSlot0, kLitmusX, 20),   // older sees value 1
        load(0, kLitmusSlot1, kLitmusX, 5)};   // younger sees value 0
    LitmusResult r = resolveLitmus(LitmusTest::CoRR, 1, commits, writes);
    EXPECT_EQ(r.forbidden, 1u);
    EXPECT_EQ(r.histogram["forbidden: non-monotone read pair"], 1u);
}

TEST(McmResolve, FlagsStaleForwardAndPreStoreReadSFV)
{
    std::vector<RemoteWrite> writes;
    std::vector<ProbeCommitRecord> commits = {
        // Iteration 0: the load forwarded from some other store.
        store(0, kLitmusSlot0, kLitmusX, 7, 10),
        load(0, kLitmusSlot1, kLitmusX, 12, /*fwd=*/3),
        // Iteration 1: not forwarded and executed before its own
        // store's value could be in the cache.
        store(1, kLitmusSlot0, kLitmusX, 9, 30),
        load(1, kLitmusSlot1, kLitmusX, 25)};
    LitmusResult r = resolveLitmus(LitmusTest::SFV, 2, commits, writes);
    EXPECT_EQ(r.forbidden, 2u);
    EXPECT_EQ(r.histogram["forbidden: forwarded from stale store"], 1u);
    EXPECT_EQ(r.histogram["forbidden: read pre-store value"], 1u);
}

TEST(McmResolve, AcceptsCleanLogsAndSkipsIncompleteIterations)
{
    std::vector<RemoteWrite> writes = {write(kLitmusFlag, 10, 1),
                                       write(kLitmusData, 8, 1)};
    std::vector<ProbeCommitRecord> commits = {
        load(0, kLitmusSlot0, kLitmusFlag, 20),
        load(0, kLitmusSlot1, kLitmusData, 22),
        // Iteration 1 is incomplete (flag load never committed) and
        // must be skipped, not misclassified.
        load(1, kLitmusSlot1, kLitmusData, 30)};
    LitmusResult r = resolveLitmus(LitmusTest::MP, 2, commits, writes);
    EXPECT_EQ(r.iterations, 1u);
    EXPECT_EQ(r.forbidden, 0u);
    EXPECT_EQ(r.histogram["data==flag"], 1u);
}

TEST(McmResolve, ValueAtCountsVisibleWrites)
{
    std::vector<RemoteWrite> writes = {
        write(kLitmusX, 5, 1), write(kLitmusX, 9, 2),
        write(kLitmusY, 7, 1)};
    EXPECT_EQ(litmusValueAt(writes, kLitmusX, 4), 0u);
    EXPECT_EQ(litmusValueAt(writes, kLitmusX, 5), 1u);
    EXPECT_EQ(litmusValueAt(writes, kLitmusX, 8), 1u);
    EXPECT_EQ(litmusValueAt(writes, kLitmusX, 9), 2u);
    EXPECT_EQ(litmusValueAt(writes, kLitmusY, 100), 1u);
    EXPECT_EQ(litmusValueAt(writes, kLitmusData, 100), 0u);
}

// ------------------------------------------------ determinism ---------

TEST(McmDeterminism, SameConfigSameResult)
{
    SimConfig lb8 = configs::withLoadBuffer(configs::base("bzip"), 8);
    LitmusConfig cfg = litmusOn(lb8, LitmusTest::MP);
    LitmusResult a = runLitmus(cfg);
    LitmusResult b = runLitmus(cfg);
    EXPECT_EQ(a.histogram, b.histogram);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.probesDelivered, b.probesDelivered);
    EXPECT_EQ(a.probeSquashes, b.probeSquashes);
    EXPECT_EQ(a.cycles, b.cycles);
}

TEST(McmDeterminism, SeedMergeIsThreadCountInvariant)
{
    SimConfig base = configs::base("bzip");
    LitmusConfig cfg = litmusOn(base, LitmusTest::CoRR);
    LitmusResult serial = runLitmusSeeds(cfg, 8, 1);
    LitmusResult parallel = runLitmusSeeds(cfg, 8, 4);
    EXPECT_EQ(serial.histogram, parallel.histogram);
    EXPECT_EQ(serial.iterations, parallel.iterations);
    EXPECT_EQ(serial.probesDelivered, parallel.probesDelivered);
    EXPECT_EQ(serial.probeSquashes, parallel.probeSquashes);
    EXPECT_EQ(serial.cycles, parallel.cycles);
}
