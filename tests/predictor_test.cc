/**
 * @file
 * Unit tests for src/predictor: GAg/PAg/hybrid branch prediction and
 * the store-set / store-load pair predictor.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/store_set.hh"

using namespace lsqscale;

// ------------------------------------------------ branch predictor ----

TEST(BranchPredictor, LearnsAlwaysTaken)
{
    HybridBranchPredictor bp;
    Pc pc = 0x400100;
    // The per-address history needs ~historyBits updates to converge.
    for (int i = 0; i < 30; ++i)
        bp.predictAndUpdate(pc, true);
    EXPECT_TRUE(bp.predict(pc));
}

TEST(BranchPredictor, LearnsAlwaysNotTaken)
{
    HybridBranchPredictor bp;
    Pc pc = 0x400200;
    for (int i = 0; i < 30; ++i)
        bp.predictAndUpdate(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(BranchPredictor, BiasedBranchAccuracy)
{
    HybridBranchPredictor bp;
    Rng rng(3);
    Pc pc = 0x400300;
    unsigned hits = 0;
    const unsigned warm = 200, n = 5000;
    for (unsigned i = 0; i < warm; ++i)
        bp.predictAndUpdate(pc, rng.chance(0.95));
    for (unsigned i = 0; i < n; ++i) {
        bool taken = rng.chance(0.95);
        hits += bp.predictAndUpdate(pc, taken) == taken;
    }
    EXPECT_GT(static_cast<double>(hits) / n, 0.90);
}

TEST(BranchPredictor, PAgLearnsShortPeriodicPattern)
{
    // T T T N repeating: local history catches it perfectly.
    PAgPredictor pag{BranchPredictorParams{}};
    Pc pc = 0x400400;
    for (int i = 0; i < 400; ++i)
        pag.update(pc, i % 4 != 3);
    unsigned hits = 0;
    for (int i = 0; i < 400; ++i) {
        bool taken = i % 4 != 3;
        hits += pag.predict(pc) == taken;
        pag.update(pc, taken);
    }
    EXPECT_GT(hits, 390u);
}

TEST(BranchPredictor, GAgUsesGlobalCorrelation)
{
    // Branch B always equals the previous branch A's outcome: global
    // history predicts B perfectly once trained.
    GAgPredictor gag{BranchPredictorParams{}};
    Rng rng(5);
    Pc a = 0x400500, b = 0x400504;
    for (int i = 0; i < 2000; ++i) {
        bool oa = rng.chance(0.5);
        gag.update(a, oa);
        gag.update(b, oa);
    }
    unsigned hits = 0;
    const unsigned n = 1000;
    for (unsigned i = 0; i < n; ++i) {
        bool oa = rng.chance(0.5);
        gag.update(a, oa);
        hits += gag.predict(b) == oa;
        gag.update(b, oa);
    }
    EXPECT_GT(static_cast<double>(hits) / n, 0.9);
}

TEST(BranchPredictor, HybridBeatsWorstComponent)
{
    // Mix of a local-periodic branch and a global-correlated pair; the
    // chooser should route each to the right component, yielding high
    // overall accuracy.
    HybridBranchPredictor bp;
    Rng rng(7);
    Pc loop = 0x400600, a = 0x400700, b = 0x400704;
    unsigned hits = 0, total = 0;
    for (int i = 0; i < 6000; ++i) {
        bool lt = i % 5 != 4;
        bool pa = rng.chance(0.5);
        bool predL = bp.predictAndUpdate(loop, lt);
        bool predA = bp.predictAndUpdate(a, pa);
        bool predB = bp.predictAndUpdate(b, pa);
        if (i > 2000) {
            hits += (predL == lt) + (predA == pa) + (predB == pa);
            total += 3;
        }
    }
    // predA is a coin flip (~50%); loop and B are learnable, so the
    // aggregate should be well above 2/3 * 50% + ...
    EXPECT_GT(static_cast<double>(hits) / total, 0.75);
}

TEST(BranchPredictor, MispredictCounting)
{
    HybridBranchPredictor bp;
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x400800, true);
    EXPECT_EQ(bp.lookups(), 100u);
    // History warm-up costs ~a dozen mispredicts, then it locks in.
    EXPECT_LT(bp.mispredicts(), 20u);
}

TEST(BranchPredictor, RejectsNonPow2Tables)
{
    BranchPredictorParams p;
    p.tableEntries = 1000;
    EXPECT_DEATH({ HybridBranchPredictor bp(p); }, "power of two");
}

// ---------------------------------------------------- store sets ------

namespace {

StoreSetParams
noClear(bool aliasFree = false)
{
    StoreSetParams p;
    p.clearInterval = 0;
    p.aliasFree = aliasFree;
    return p;
}

} // namespace

TEST(StoreSet, UntrainedLoadHasNoSet)
{
    StoreSetPredictor ssp(noClear());
    LoadPrediction lp = ssp.loadFetch(0x400100);
    EXPECT_FALSE(lp.hasSet());
    EXPECT_FALSE(lp.mustSearchStoreQueue);
    EXPECT_EQ(lp.waitForStore, kNoSeq);
}

TEST(StoreSet, TrainedPairPredictsDependence)
{
    StoreSetPredictor ssp(noClear());
    Pc storePc = 0x400100, loadPc = 0x400200;
    ssp.trainPair(storePc, loadPc);

    StorePrediction sp = ssp.storeFetch(storePc, 10);
    ASSERT_TRUE(sp.hasSet());

    LoadPrediction lp = ssp.loadFetch(loadPc);
    ASSERT_TRUE(lp.hasSet());
    EXPECT_EQ(lp.ssid, sp.ssid);
    EXPECT_EQ(lp.waitForStore, 10u);       // wait for the store
    EXPECT_TRUE(lp.mustSearchStoreQueue);  // counter is 1
}

TEST(StoreSet, ValidBitClearsAtIssue)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction sp = ssp.storeFetch(0x100, 5);
    EXPECT_TRUE(ssp.storeStillPending(sp.ssid, 5));
    ssp.storeIssued(sp, 5);
    EXPECT_FALSE(ssp.storeStillPending(sp.ssid, 5));
    // Pair-predictor counter still non-zero until commit.
    EXPECT_TRUE(ssp.counterNonZero(sp.ssid));
}

TEST(StoreSet, CounterClearsAtCommitNotIssue)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction sp = ssp.storeFetch(0x100, 5);
    ssp.storeIssued(sp, 5);
    EXPECT_TRUE(ssp.counterNonZero(sp.ssid));
    ssp.storeCommitted(sp);
    EXPECT_FALSE(ssp.counterNonZero(sp.ssid));
}

TEST(StoreSet, MultipleInFlightStoresNeedMultiBitCounter)
{
    // Section 2.1.1: a single valid bit is insufficient; the counter
    // tracks all in-flight instances.
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction s1 = ssp.storeFetch(0x100, 1);
    StorePrediction s2 = ssp.storeFetch(0x100, 2);
    StorePrediction s3 = ssp.storeFetch(0x100, 3);
    ssp.storeCommitted(s1);
    EXPECT_TRUE(ssp.counterNonZero(s1.ssid));
    ssp.storeCommitted(s2);
    EXPECT_TRUE(ssp.counterNonZero(s2.ssid));
    ssp.storeCommitted(s3);
    EXPECT_FALSE(ssp.counterNonZero(s3.ssid));
}

TEST(StoreSet, CounterSaturatesGracefully)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    std::vector<StorePrediction> tags;
    for (SeqNum i = 0; i < 20; ++i)
        tags.push_back(ssp.storeFetch(0x100, i));
    // 3-bit counter saturates at 7; commits below saturation keep it
    // non-zero; draining everything reaches zero without underflow.
    for (auto &t : tags)
        ssp.storeCommitted(t);
    EXPECT_FALSE(ssp.counterNonZero(tags[0].ssid));
    ssp.storeCommitted(tags[0]);   // extra decrement: saturates at 0
    EXPECT_FALSE(ssp.counterNonZero(tags[0].ssid));
}

TEST(StoreSet, SquashRollsBackCounter)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction s1 = ssp.storeFetch(0x100, 1);
    StorePrediction s2 = ssp.storeFetch(0x100, 2);
    ssp.storeSquashed(s2, 2);
    EXPECT_TRUE(ssp.counterNonZero(s1.ssid));
    ssp.storeCommitted(s1);
    EXPECT_FALSE(ssp.counterNonZero(s1.ssid));
}

TEST(StoreSet, SquashClearsValidBitForLastStore)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction sp = ssp.storeFetch(0x100, 7);
    EXPECT_TRUE(ssp.storeStillPending(sp.ssid, 7));
    ssp.storeSquashed(sp, 7);
    EXPECT_FALSE(ssp.storeStillPending(sp.ssid, 7));
}

TEST(StoreSet, StoreStoreSerialization)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction s1 = ssp.storeFetch(0x100, 1);
    EXPECT_EQ(s1.waitForStore, kNoSeq);   // first store of the set
    StorePrediction s2 = ssp.storeFetch(0x100, 2);
    EXPECT_EQ(s2.waitForStore, 1u);       // chained behind s1
    ssp.storeIssued(s1, 1);
    StorePrediction s3 = ssp.storeFetch(0x100, 3);
    EXPECT_EQ(s3.waitForStore, 2u);       // still behind s2
}

TEST(StoreSet, MergeRuleSmallerSsidWins)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x1000, 0x2000);
    ssp.trainPair(0x3000, 0x4000);
    StorePrediction a = ssp.storeFetch(0x1000, 1);
    StorePrediction b = ssp.storeFetch(0x3000, 2);
    std::uint16_t winner = std::min(a.ssid, b.ssid);
    // Merge the two sets via a cross pair.
    ssp.trainPair(0x1000, 0x4000);
    StorePrediction a2 = ssp.storeFetch(0x1000, 3);
    LoadPrediction l2 = ssp.loadFetch(0x4000);
    EXPECT_EQ(a2.ssid, winner);
    EXPECT_EQ(l2.ssid, winner);
}

TEST(StoreSet, TrainAssignsBothSides)
{
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    EXPECT_TRUE(ssp.storeFetch(0x100, 1).hasSet());
    EXPECT_TRUE(ssp.loadFetch(0x200).hasSet());
    EXPECT_EQ(ssp.pairsTrained(), 1u);
}

TEST(StoreSet, AliasFreeKeepsPcsSeparate)
{
    // In alias-free mode two unrelated PCs can never share a set by
    // collision.
    StoreSetPredictor ssp(noClear(true));
    ssp.trainPair(0x100, 0x200);
    for (Pc pc = 0x10000; pc < 0x20000; pc += 4)
        EXPECT_FALSE(ssp.loadFetch(pc).hasSet());
}

TEST(StoreSet, BoundedTablesAliasEventually)
{
    // With a 4K-entry SSIT, at least one untrained PC collides with a
    // trained slot across a large PC range (constructive interference).
    StoreSetParams params = noClear();
    StoreSetPredictor ssp(params);
    for (Pc pc = 0x100; pc < 0x100 + 4096 * 8; pc += 8)
        ssp.trainPair(pc, pc + 4);
    bool aliased = false;
    for (Pc pc = 0x900000; pc < 0x900000 + (1 << 16) && !aliased;
         pc += 4)
        aliased = ssp.loadFetch(pc).hasSet();
    EXPECT_TRUE(aliased);
}

TEST(StoreSet, CyclicClearingFlushesSets)
{
    StoreSetParams p;
    p.clearInterval = 10;
    StoreSetPredictor ssp(p);
    ssp.trainPair(0x100, 0x200);
    EXPECT_TRUE(ssp.loadFetch(0x200).hasSet());
    for (int i = 0; i < 12; ++i)
        ssp.loadFetch(0x9000 + 4 * i);
    EXPECT_FALSE(ssp.loadFetch(0x200).hasSet());
    EXPECT_GE(ssp.tableClears(), 1u);
}

TEST(StoreSet, ClearTablesIsSafeMidFlight)
{
    // Stores in flight across a clear must not corrupt state: their
    // commit decrements saturate at zero.
    StoreSetPredictor ssp(noClear());
    ssp.trainPair(0x100, 0x200);
    StorePrediction sp = ssp.storeFetch(0x100, 1);
    ssp.clearTables();
    ssp.storeCommitted(sp);   // no crash, no underflow
    ssp.storeIssued(sp, 1);
    EXPECT_FALSE(ssp.counterNonZero(sp.ssid));
}

TEST(StoreSet, LoadWithoutSetNeverWaits)
{
    StoreSetPredictor ssp(noClear());
    ssp.storeFetch(0x100, 1);   // untrained store: no set
    LoadPrediction lp = ssp.loadFetch(0x200);
    EXPECT_FALSE(lp.hasSet());
    EXPECT_FALSE(ssp.storeStillPending(lp.ssid, 1));
    EXPECT_FALSE(ssp.counterNonZero(kNoSsid));
}

// Parameterized: both table modes obey the same lifecycle invariants.
class StoreSetModes : public ::testing::TestWithParam<bool>
{
};

TEST_P(StoreSetModes, FetchIssueCommitLifecycle)
{
    StoreSetPredictor ssp(noClear(GetParam()));
    ssp.trainPair(0x100, 0x200);
    for (SeqNum seq = 0; seq < 100; ++seq) {
        StorePrediction sp = ssp.storeFetch(0x100, seq);
        ASSERT_TRUE(sp.hasSet());
        LoadPrediction lp = ssp.loadFetch(0x200);
        EXPECT_TRUE(lp.mustSearchStoreQueue);
        EXPECT_EQ(lp.waitForStore, seq);
        ssp.storeIssued(sp, seq);
        ssp.storeCommitted(sp);
        EXPECT_FALSE(ssp.counterNonZero(sp.ssid)) << "seq " << seq;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, StoreSetModes,
                         ::testing::Values(false, true));

// ------------------------------------------- predictor kinds ----------

TEST(BranchPredictor, BimodalLearnsBias)
{
    BranchPredictorParams p;
    BimodalPredictor bm(p);
    Pc pc = 0x400900;
    for (int i = 0; i < 10; ++i)
        bm.update(pc, true);
    EXPECT_TRUE(bm.predict(pc));
    for (int i = 0; i < 10; ++i)
        bm.update(pc, false);
    EXPECT_FALSE(bm.predict(pc));
}

TEST(BranchPredictor, BimodalCannotLearnPattern)
{
    // T T T N repeating defeats history-less prediction: accuracy is
    // stuck at ~75% (predict taken always).
    BranchPredictorParams p;
    BimodalPredictor bm(p);
    Pc pc = 0x400A00;
    unsigned hits = 0;
    for (int i = 0; i < 800; ++i) {
        bool taken = i % 4 != 3;
        if (i >= 400)
            hits += bm.predict(pc) == taken;
        bm.update(pc, taken);
    }
    EXPECT_NEAR(hits / 400.0, 0.75, 0.05);
}

TEST(BranchPredictor, KindSelectsComponent)
{
    // A pure loop pattern: PAg (and the hybrid) learn it; bimodal
    // saturates at the bias.
    auto accuracyFor = [](BranchPredictorKind kind) {
        BranchPredictorParams p;
        p.kind = kind;
        HybridBranchPredictor bp(p);
        Pc pc = 0x400B00;
        for (int i = 0; i < 400; ++i)
            bp.predictAndUpdate(pc, i % 4 != 3);
        unsigned hits = 0;
        for (int i = 0; i < 400; ++i) {
            bool taken = i % 4 != 3;
            hits += bp.predictAndUpdate(pc, taken) == taken;
        }
        return hits / 400.0;
    };
    EXPECT_GT(accuracyFor(BranchPredictorKind::PAg), 0.95);
    EXPECT_GT(accuracyFor(BranchPredictorKind::Hybrid), 0.95);
    EXPECT_LT(accuracyFor(BranchPredictorKind::Bimodal), 0.85);
}
