/**
 * @file
 * Tests for the binary trace file format and trace-driven simulation.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "workload/benchmark_profile.hh"
#include "workload/trace_file.hh"
#include "workload/trace_generator.hh"

using namespace lsqscale;

namespace {

/** Temp path helper; files are removed in the fixture teardown. */
class TraceFileTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &name)
    {
        std::string p = ::testing::TempDir() + "lsqscale_" + name;
        paths_.push_back(p);
        return p;
    }

    void
    TearDown() override
    {
        for (const auto &p : paths_)
            std::remove(p.c_str());
    }

    std::vector<std::string> paths_;
};

} // namespace

TEST_F(TraceFileTest, RoundTripPreservesEveryField)
{
    std::string path = tempPath("roundtrip.trace");
    TraceGenerator gen(profileFor("gcc"), 7);
    std::vector<MicroOp> ops;
    {
        TraceFileWriter w(path);
        for (int i = 0; i < 5000; ++i) {
            MicroOp op = gen.next();
            ops.push_back(op);
            w.append(op);
        }
        EXPECT_EQ(w.written(), 5000u);
    }

    TraceFileReader r(path);
    EXPECT_EQ(r.instructionCount(), 5000u);
    for (const MicroOp &want : ops) {
        MicroOp got = r.next();
        EXPECT_EQ(got.seq, want.seq);
        EXPECT_EQ(got.pc, want.pc);
        EXPECT_EQ(got.op, want.op);
        EXPECT_EQ(got.addr, want.addr);
        EXPECT_EQ(got.src1, want.src1);
        EXPECT_EQ(got.src2, want.src2);
        EXPECT_EQ(got.dest, want.dest);
        EXPECT_EQ(got.taken, want.taken);
        EXPECT_EQ(got.target, want.target);
    }
}

TEST_F(TraceFileTest, WrapsWithMonotonicSeqNumbers)
{
    std::string path = tempPath("wrap.trace");
    recordSyntheticTrace("bzip", 1, 100, path);
    TraceFileReader r(path);
    for (SeqNum i = 0; i < 350; ++i)
        EXPECT_EQ(r.next().seq, i);
}

TEST_F(TraceFileTest, RejectsGarbage)
{
    std::string path = tempPath("garbage.trace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a trace", f);
    std::fclose(f);
    EXPECT_DEATH({ TraceFileReader r(path); }, "bad magic");
}

TEST_F(TraceFileTest, RejectsMissingFile)
{
    EXPECT_DEATH({ TraceFileReader r("/nonexistent/x.trace"); },
                 "cannot open");
}

TEST_F(TraceFileTest, RejectsEmptyTrace)
{
    std::string path = tempPath("empty.trace");
    {
        TraceFileWriter w(path);
        w.close();
    }
    EXPECT_DEATH({ TraceFileReader r(path); }, "empty trace");
}

TEST_F(TraceFileTest, SimulatorRunsFromTrace)
{
    std::string path = tempPath("sim.trace");
    recordSyntheticTrace("bzip", 1, 40000, path);

    SimConfig cfg = configs::base("bzip");
    cfg.tracePath = path;
    cfg.instructions = 20000;
    cfg.warmup = 5000;
    SimResult r = Simulator(cfg).run();
    EXPECT_GE(r.committed, 20000u);
    EXPECT_GT(r.ipc(), 0.1);
}

TEST_F(TraceFileTest, TraceRunMatchesSyntheticRunClosely)
{
    // Same instructions, two delivery paths; the benchmark label lets
    // the trace run pre-warm, so results should track closely.
    std::string path = tempPath("match.trace");
    recordSyntheticTrace("bzip", 1, 60000, path);

    SimConfig synth = configs::base("bzip");
    synth.instructions = 30000;
    SimResult a = Simulator(synth).run();

    SimConfig traced = synth;
    traced.tracePath = path;
    SimResult b = Simulator(traced).run();

    EXPECT_NEAR(b.ipc(), a.ipc(), a.ipc() * 0.25);
    EXPECT_NEAR(static_cast<double>(b.sqSearches()),
                static_cast<double>(a.sqSearches()),
                0.25 * static_cast<double>(a.sqSearches()));
}

TEST_F(TraceFileTest, SquashReplayWorksOnTraceRuns)
{
    // perl squashes regularly; a trace-driven run must replay through
    // the InstStream window just like the generator path.
    std::string path = tempPath("squash.trace");
    recordSyntheticTrace("perl", 3, 50000, path);
    SimConfig cfg = configs::withPairPredictor(configs::base("perl"));
    cfg.tracePath = path;
    cfg.instructions = 25000;
    SimResult r = Simulator(cfg).run();
    EXPECT_GE(r.committed, 25000u);
}
