/**
 * @file
 * Tests for the host-telemetry registry (src/metrics/metrics.hh).
 *
 * The load-bearing properties: updates are safe from JobPool workers
 * (the TSan CI flavor runs this binary), a forked child's updates
 * never leak into the parent registry (the crash-isolated sweep
 * contract), bucket boundaries are inclusive upper bounds, and the
 * two exposition formats are stable and NaN-free. The strict JSON
 * parser at the bottom round-trips both the registry dump and a sweep
 * sink document whose derived fields are NaN — jsonNumber() must have
 * turned every one into null, or the parse fails.
 */

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "harness/job_pool.hh"
#include "harness/sink.hh"
#include "harness/sweep.hh"
#include "metrics/metrics.hh"
#include "sim/cli.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"

namespace lsqscale {
namespace {

using metrics::HistogramSnapshot;
using metrics::MetricsSnapshot;

// ------------------------------------------------ strict JSON parse --

/**
 * Minimal strict JSON validator: objects, arrays, strings, numbers,
 * true/false/null per RFC 8259 and nothing else. In particular the
 * bare tokens `nan`, `inf`, and `-nan` that printf-style emitters
 * leak are rejected, which is exactly what this suite uses it for.
 */
class StrictJson
{
  public:
    static bool valid(const std::string &text)
    {
        StrictJson p(text);
        p.skipWs();
        if (!p.value())
            return false;
        p.skipWs();
        return p.pos_ == p.text_.size();
    }

  private:
    explicit StrictJson(const std::string &text) : text_(text) {}

    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') { ++pos_; return true; }
        while (true) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_; // skip the escaped char (coarse but strict
                        // enough: no bare quote can slip through)
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_;
        return true;
    }

    bool
    number()
    {
        std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        if (!std::isdigit(peek()))
            return false; // rejects nan/inf right here
        while (std::isdigit(peek()))
            ++pos_;
        if (peek() == '.') {
            ++pos_;
            if (!std::isdigit(peek()))
                return false;
            while (std::isdigit(peek()))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(peek()))
                return false;
            while (std::isdigit(peek()))
                ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                text_[pos_] == '\t' || text_[pos_] == '\r'))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST(StrictJsonSelfTest, AcceptsJsonRejectsNanTokens)
{
    EXPECT_TRUE(StrictJson::valid(
        "{\"a\": [1, -2.5, 1e9, null, true], \"b\": {}}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\": nan}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\": -nan}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\": inf}"));
    EXPECT_FALSE(StrictJson::valid("{\"a\": 1,}"));
}

// ------------------------------------------------------- registry ----

TEST(MetricsRegistry, SameNameReturnsSameInstance)
{
    metrics::Counter &a = metrics::counter("lsq_test_instance_total");
    metrics::Counter &b = metrics::counter("lsq_test_instance_total");
    EXPECT_EQ(&a, &b);

    metrics::Histogram &h1 =
        metrics::histogram("lsq_test_instance_us", {1, 2});
    // Later bounds are ignored: first registration wins.
    metrics::Histogram &h2 =
        metrics::histogram("lsq_test_instance_us", {5, 6, 7});
    EXPECT_EQ(&h1, &h2);
    EXPECT_EQ(h2.bounds(), (std::vector<std::uint64_t>{1, 2}));
}

TEST(MetricsRegistry, GaugeMovesBothWays)
{
    metrics::Gauge &g = metrics::gauge("lsq_test_depth");
    g.set(10);
    g.add(5);
    g.sub(12);
    EXPECT_EQ(g.value(), 3);
    g.sub(5);
    EXPECT_EQ(g.value(), -2); // gauges may legitimately go negative
}

TEST(MetricsRegistry, HistogramBucketBoundsAreInclusive)
{
    metrics::Histogram &h =
        metrics::histogram("lsq_test_bounds_us", {10, 20});
    h.observe(5);  // -> bucket 0
    h.observe(10); // == bound: still bucket 0 (inclusive upper bound)
    h.observe(11); // -> bucket 1
    h.observe(20); // == bound: bucket 1
    h.observe(21); // -> overflow bucket
    HistogramSnapshot s = HistogramSnapshot::capture(h);
    EXPECT_EQ(s.counts, (std::vector<std::uint64_t>{2, 2, 1}));
    EXPECT_EQ(s.sum, 5u + 10 + 11 + 20 + 21);
    EXPECT_EQ(s.count, 5u);
}

TEST(MetricsRegistry, EmptyHistogramStatsAreNaNButRenderNull)
{
    metrics::Histogram &h =
        metrics::histogram("lsq_test_empty_us", {10});
    HistogramSnapshot s = HistogramSnapshot::capture(h);
    EXPECT_TRUE(std::isnan(s.mean()));
    EXPECT_TRUE(std::isnan(s.percentile(0.5)));

    MetricsSnapshot snap;
    snap.histograms["lsq_test_empty_us"] = s;
    std::string json = metrics::toJson(snap);
    EXPECT_NE(json.find("\"mean\": null"), std::string::npos) << json;
    EXPECT_NE(json.find("\"p50\": null"), std::string::npos) << json;
    EXPECT_TRUE(StrictJson::valid(json)) << json;
}

TEST(MetricsSnapshotTest, MergeAddsAndSkipsMismatchedBounds)
{
    MetricsSnapshot a;
    a.counters["lsq_test_m_total"] = 3;
    a.gauges["lsq_test_m_depth"] = 2;
    a.histograms["lsq_test_m_us"] =
        HistogramSnapshot{{10, 20}, {1, 0, 2}, 55, 3};
    a.histograms["lsq_test_m_mismatch_us"] =
        HistogramSnapshot{{10}, {1, 0}, 5, 1};

    MetricsSnapshot b;
    b.counters["lsq_test_m_total"] = 4;
    b.counters["lsq_test_m_new_total"] = 1;
    b.gauges["lsq_test_m_depth"] = -5;
    b.histograms["lsq_test_m_us"] =
        HistogramSnapshot{{10, 20}, {0, 3, 0}, 45, 3};
    b.histograms["lsq_test_m_mismatch_us"] =
        HistogramSnapshot{{99}, {7, 7}, 700, 14};
    b.histograms["lsq_test_m_absent_us"] =
        HistogramSnapshot{{10}, {1, 1}, 30, 2};

    a.merge(b);
    EXPECT_EQ(a.counters["lsq_test_m_total"], 7u);
    EXPECT_EQ(a.counters["lsq_test_m_new_total"], 1u);
    EXPECT_EQ(a.gauges["lsq_test_m_depth"], -3);
    EXPECT_EQ(a.histograms["lsq_test_m_us"].counts,
              (std::vector<std::uint64_t>{1, 3, 2}));
    EXPECT_EQ(a.histograms["lsq_test_m_us"].sum, 100u);
    EXPECT_EQ(a.histograms["lsq_test_m_us"].count, 6u);
    // Mismatched bounds: the first-seen series wins untouched.
    EXPECT_EQ(a.histograms["lsq_test_m_mismatch_us"].sum, 5u);
    // Absent on our side: copied over whole.
    EXPECT_EQ(a.histograms["lsq_test_m_absent_us"].count, 2u);
}

// ----------------------------------------------------- exposition ----

/** One small registry with all three metric kinds, exactly known. */
MetricsSnapshot
goldenRegistry()
{
    metrics::resetForTest();
    metrics::counter("lsq_test_events_total").add(2);
    metrics::gauge("lsq_test_depth").set(5);
    metrics::Histogram &h =
        metrics::histogram("lsq_test_wait_us", {10, 20});
    h.observe(5);
    h.observe(25);
    return metrics::snapshot();
}

TEST(MetricsExposition, JsonGolden)
{
    std::string json = metrics::toJson(goldenRegistry());
    EXPECT_EQ(json,
              "{\n"
              "  \"schema\": \"lsqscale-metrics-v1\",\n"
              "  \"counters\": {\n"
              "    \"lsq_test_events_total\": 2\n"
              "  },\n"
              "  \"gauges\": {\n"
              "    \"lsq_test_depth\": 5\n"
              "  },\n"
              "  \"histograms\": {\n"
              "    \"lsq_test_wait_us\": {\"sum\": 30, \"count\": 2, "
              "\"mean\": 15, \"p50\": 10, \"p99\": 20, \"buckets\": "
              "[{\"le\": 10, \"count\": 1}, {\"le\": 20, \"count\": 0},"
              " {\"le\": null, \"count\": 1}]}\n"
              "  }\n"
              "}");
    EXPECT_TRUE(StrictJson::valid(json)) << json;
}

TEST(MetricsExposition, PrometheusGolden)
{
    std::string prom = metrics::toPrometheus(goldenRegistry());
    EXPECT_EQ(prom,
              "# TYPE lsq_test_events_total counter\n"
              "lsq_test_events_total 2\n"
              "# TYPE lsq_test_depth gauge\n"
              "lsq_test_depth 5\n"
              "# TYPE lsq_test_wait_us histogram\n"
              "lsq_test_wait_us_bucket{le=\"10\"} 1\n"
              "lsq_test_wait_us_bucket{le=\"20\"} 1\n"
              "lsq_test_wait_us_bucket{le=\"+Inf\"} 2\n"
              "lsq_test_wait_us_sum 30\n"
              "lsq_test_wait_us_count 2\n");
}

// ---------------------------------------------------- concurrency ----

TEST(MetricsConcurrency, JobPoolWorkersShareMetricsSafely)
{
    metrics::Counter &c = metrics::counter("lsq_test_conc_total");
    metrics::Gauge &g = metrics::gauge("lsq_test_conc_depth");
    metrics::Histogram &h =
        metrics::histogram("lsq_test_conc_us",
                           metrics::latencyBucketsUs());
    std::uint64_t c0 = c.value();
    std::uint64_t h0 = h.count();

    constexpr int kJobs = 64;
    constexpr int kOpsPerJob = 1000;
    {
        JobPool pool(8);
        for (int j = 0; j < kJobs; ++j) {
            pool.submit([&, j] {
                for (int i = 0; i < kOpsPerJob; ++i) {
                    c.add();
                    g.add(1);
                    g.sub(1);
                    h.observe(static_cast<std::uint64_t>(j * 31 + i));
                }
            });
        }
        pool.wait();
    }
    EXPECT_EQ(c.value() - c0,
              static_cast<std::uint64_t>(kJobs) * kOpsPerJob);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count() - h0,
              static_cast<std::uint64_t>(kJobs) * kOpsPerJob);
}

TEST(MetricsIsolation, ForkedChildUpdatesStayInTheChild)
{
    metrics::Counter &c = metrics::counter("lsq_test_fork_total");
    c.add(7);
    std::uint64_t before = c.value();

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: the copy-on-write registry is private now. Updates
        // must be visible to the child itself and invisible to the
        // parent — the same guarantee the process-isolated sweep
        // relies on (src/serve/daemon.cc cell jobs).
        c.add(1000);
        metrics::counter("lsq_test_fork_child_only_total").add();
        bool ok = c.value() == before + 1000;
        _exit(ok ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);

    EXPECT_EQ(c.value(), before);
    MetricsSnapshot snap = metrics::snapshot();
    EXPECT_EQ(snap.counters.count("lsq_test_fork_child_only_total"),
              0u);
}

// ------------------------------------------------ sink round trips ----

TEST(SinkRoundTrip, JsonNumberMapsNonFiniteToNull)
{
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(-std::nan("")), "null");
    EXPECT_EQ(jsonNumber(HUGE_VAL), "null");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
}

TEST(SinkRoundTrip, SweepJsonWithPoisonedCellParsesStrictly)
{
    SweepOutcome outcome;
    outcome.name = "nan_roundtrip";
    outcome.jobs = 1;
    outcome.poisonedCells = 1;
    outcome.seconds = 0.25;
    SweepCell cell;
    cell.configLabel = "base";
    cell.benchmark = "gzip";
    cell.status = JobStatus::Crashed;
    cell.error = "injected for the round-trip test";
    outcome.grid = {{cell}};

    std::string json =
        JsonFileSink::render(outcome, {{"origin", "metrics_test"}});
    EXPECT_TRUE(StrictJson::valid(json)) << json;
}

TEST(SinkRoundTrip, CliJsonWithNanSamplingFieldsParsesStrictly)
{
    // A one-interval sampled run has no variance: ipcStddev/ipcErr95
    // are NaN and resultToJson must emit null for both (the comment
    // in src/sim/cli.cc pins this; here the parser enforces it).
    SimResult result;
    result.benchmark = "gzip";
    result.cycles = 100;
    result.committed = 150;
    result.sampling.enabled = true;
    result.sampling.intervalIpc = {1.5};
    result.sampling.ipcMean = 1.5;
    result.sampling.ipcStddev = std::nan("");
    result.sampling.ipcErr95 = std::nan("");
    SimConfig config = configs::base("gzip");

    std::string json = resultToJson(result, config);
    ASSERT_NE(json.find("\"ipc_stddev\": null"), std::string::npos)
        << json;
    ASSERT_NE(json.find("\"ipc_err95\": null"), std::string::npos)
        << json;
    EXPECT_TRUE(StrictJson::valid(json)) << json;
}

TEST(SinkRoundTrip, MetricsJsonParsesStrictly)
{
    metrics::resetForTest();
    metrics::counter("lsq_test_rt_total").add(3);
    metrics::histogram("lsq_test_rt_us",
                       metrics::latencyBucketsUs())
        .observe(1234);
    metrics::histogram("lsq_test_rt_empty_us", {1}); // NaN stats
    std::string json = metrics::toJson(metrics::snapshot());
    EXPECT_TRUE(StrictJson::valid(json)) << json;
}

} // namespace
} // namespace lsqscale
