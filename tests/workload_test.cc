/**
 * @file
 * Unit tests for src/workload: profiles, address streams, branch
 * model, trace generator, and the replayable instruction stream.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>

#include "workload/address_stream.hh"
#include "workload/benchmark_profile.hh"
#include "workload/branch_model.hh"
#include "workload/inst_stream.hh"
#include "workload/trace_generator.hh"

using namespace lsqscale;

// ---------------------------------------------------- profiles --------

TEST(Profiles, AllEighteenBenchmarksPresent)
{
    EXPECT_EQ(intBenchmarks().size(), 9u);
    EXPECT_EQ(fpBenchmarks().size(), 9u);
    EXPECT_EQ(allBenchmarks().size(), 18u);
    for (const auto &name : allBenchmarks())
        EXPECT_EQ(profileFor(name).name, name);
}

TEST(Profiles, IntFpFlagsConsistent)
{
    for (const auto &name : intBenchmarks())
        EXPECT_FALSE(profileFor(name).isFp) << name;
    for (const auto &name : fpBenchmarks())
        EXPECT_TRUE(profileFor(name).isFp) << name;
}

TEST(Profiles, PaperReportedMixes)
{
    // The paper reports these mixes explicitly.
    EXPECT_DOUBLE_EQ(profileFor("mgrid").loadFrac, 0.51);
    EXPECT_DOUBLE_EQ(profileFor("mgrid").storeFrac, 0.02);
    EXPECT_DOUBLE_EQ(profileFor("vortex").loadFrac, 0.18);
    EXPECT_DOUBLE_EQ(profileFor("vortex").storeFrac, 0.23);
    EXPECT_DOUBLE_EQ(profileFor("equake").loadFrac, 0.42);
}

TEST(Profiles, FractionsAreSane)
{
    for (const auto &name : allBenchmarks()) {
        const BenchmarkProfile &p = profileFor(name);
        EXPECT_GT(p.loadFrac, 0.0) << name;
        EXPECT_LT(p.loadFrac + p.storeFrac + p.branchFrac, 1.0) << name;
        EXPECT_GE(p.fpFrac, 0.0) << name;
        EXPECT_LE(p.fpFrac, 1.0) << name;
        EXPECT_GT(p.depDistMean, 0.0) << name;
        EXPECT_GT(p.strideFootprintKb, 0u) << name;
        EXPECT_GT(p.codeFootprintKb, 0u) << name;
        EXPECT_GT(p.paperBaseIpc, 0.0) << name;
    }
}

TEST(Profiles, UnknownBenchmarkIsFatal)
{
    EXPECT_DEATH({ profileFor("nonexistent"); }, "unknown benchmark");
}

// ------------------------------------------------ address stream ------

TEST(AddressStream, AddressesAreAligned)
{
    AddressStream s(profileFor("bzip"), Rng(1));
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(s.fromRegion(MemRegion::Stack, 0, 0x400000 + 4 * i) %
                      8,
                  0u);
        EXPECT_EQ(s.fromRegion(MemRegion::Stride, i % 4, 0x400000) % 8,
                  0u);
        EXPECT_EQ(s.fromRegion(MemRegion::Chase, 0, 0x400000) % 8, 0u);
    }
}

TEST(AddressStream, RegionsAreDisjoint)
{
    AddressStream s(profileFor("bzip"), Rng(2));
    for (int i = 0; i < 200; ++i) {
        Addr st = s.fromRegion(MemRegion::Stack, 0, 0x400000);
        Addr sr = s.fromRegion(MemRegion::Stride, 0, 0x400000);
        Addr ch = s.fromRegion(MemRegion::Chase, 0, 0x400000);
        EXPECT_GE(st, kStackBase);
        EXPECT_GE(sr, kHeapBase);
        EXPECT_LT(sr, kChaseBase);
        EXPECT_GE(ch, kChaseBase);
        EXPECT_LT(ch, kStackBase);
    }
}

TEST(AddressStream, StrideWalksSequentially)
{
    AddressStream s(profileFor("mgrid"), Rng(3));
    Addr a = s.fromRegion(MemRegion::Stride, 2, 0);
    Addr b = s.fromRegion(MemRegion::Stride, 2, 0);
    EXPECT_EQ(b, a + 8);
}

TEST(AddressStream, StreamsAreSeparate)
{
    // Streams occupy disjoint, page-separated, aligned ranges.
    auto layout = AddressStream::streamLayout(profileFor("mgrid"));
    for (std::size_t i = 0; i < layout.size(); ++i) {
        EXPECT_EQ(layout[i].base % 8, 0u);
        EXPECT_EQ(layout[i].size % 8, 0u);
        if (i > 0)
            EXPECT_GE(layout[i].base,
                      layout[i - 1].base + layout[i - 1].size);
    }
}

TEST(AddressStream, StackSlotIsPcStable)
{
    AddressStream s(profileFor("perl"), Rng(5));
    // Same PC, consecutive accesses, no drift in between (drift is a
    // 2% event; tolerate it by comparing offsets within the window).
    Addr a1 = s.fromRegion(MemRegion::Stack, 0, 0x400100);
    Addr a2 = s.fromRegion(MemRegion::Stack, 0, 0x400100);
    Addr b = s.fromRegion(MemRegion::Stack, 0, 0x400104);
    EXPECT_EQ(a1 % 4096, a2 % 4096);
    EXPECT_NE(a1 % 4096, b % 4096);
}

TEST(AddressStream, RecentStoreReuse)
{
    AddressStream s(profileFor("bzip"), Rng(6));
    s.noteStore(0x12345678);
    EXPECT_EQ(s.recentStoreAddr(MemRegion::Stack, 0, 0x400000),
              0x12345678u);
}

TEST(AddressStream, RecentLoadReuse)
{
    AddressStream s(profileFor("bzip"), Rng(7));
    s.noteLoad(0x1000);
    EXPECT_EQ(s.recentLoadAddr(MemRegion::Stack, 0, 0x400000),
              0x1000u);
}

TEST(AddressStream, EmptyRingsFallBack)
{
    AddressStream s(profileFor("bzip"), Rng(8));
    // No stores noted yet: must not crash, returns a fresh address.
    Addr a = s.recentStoreAddr(MemRegion::Chase, 0, 0x400000);
    EXPECT_GE(a, kChaseBase);
}

TEST(AddressStream, LayoutIsContiguousAndPageSeparated)
{
    auto layout = AddressStream::streamLayout(profileFor("mgrid"));
    ASSERT_GE(layout.size(), 2u);
    for (std::size_t i = 1; i < layout.size(); ++i) {
        EXPECT_EQ(layout[i].base,
                  layout[i - 1].base + layout[i - 1].size + 4096);
    }
}

TEST(AddressStream, ChaseHotSubsetBounds)
{
    Addr hot = AddressStream::chaseHotBytes(profileFor("mcf"));
    EXPECT_GE(hot, 4096u);
    EXPECT_LE(hot, 512u * 1024);
}

TEST(AddressStream, ChaseStaysInFootprint)
{
    const BenchmarkProfile &p = profileFor("twolf");
    AddressStream s(p, Rng(9));
    Addr bytes = static_cast<Addr>(p.chaseFootprintKb) * 1024;
    for (int i = 0; i < 2000; ++i) {
        Addr a = s.fromRegion(MemRegion::Chase, 0, 0);
        EXPECT_GE(a, kChaseBase);
        EXPECT_LT(a, kChaseBase + bytes);
    }
}

// --------------------------------------------------- branch model -----

TEST(BranchModel, OutcomesDeterministicPerSeed)
{
    BranchModel a(profileFor("gcc"), Rng(11));
    BranchModel b(profileFor("gcc"), Rng(11));
    for (Pc pc = 0x400000; pc < 0x400400; pc += 4) {
        BranchOutcome oa = a.resolve(pc);
        BranchOutcome ob = b.resolve(pc);
        EXPECT_EQ(oa.taken, ob.taken);
        EXPECT_EQ(oa.target, ob.target);
    }
}

TEST(BranchModel, TargetsWithinCodeRegion)
{
    BranchModel m(profileFor("gcc"), Rng(13));
    for (Pc pc = 0x400000; pc < 0x402000; pc += 4) {
        BranchOutcome o = m.resolve(pc);
        EXPECT_GE(o.target, m.codeBase());
        EXPECT_LT(o.target, m.codeBase() + m.codeBytes());
    }
}

TEST(BranchModel, TargetStablePerPc)
{
    BranchModel m(profileFor("bzip"), Rng(17));
    Pc pc = 0x400100;
    Pc t = m.resolve(pc).target;
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(m.resolve(pc).target, t);
}

TEST(BranchModel, LoopBranchesExitPeriodically)
{
    // Some static branch must behave like a loop: mostly taken with
    // periodic not-taken. Sample many PCs and find at least one.
    BranchModel m(profileFor("mgrid"), Rng(19));
    bool foundLoop = false;
    for (Pc pc = 0x400000; pc < 0x400000 + 4096 && !foundLoop;
         pc += 4) {
        unsigned taken = 0, total = 200;
        bool sawExit = false;
        Pc target = m.resolve(pc).target;
        for (unsigned i = 0; i < total; ++i) {
            BranchOutcome o = m.resolve(pc);
            taken += o.taken;
            sawExit |= !o.taken;
        }
        if (target < pc && taken > total * 3 / 4 && sawExit)
            foundLoop = true;
    }
    EXPECT_TRUE(foundLoop);
}

// ------------------------------------------------ trace generator -----

TEST(TraceGenerator, DeterministicForSeed)
{
    TraceGenerator a(profileFor("bzip"), 5);
    TraceGenerator b(profileFor("bzip"), 5);
    for (int i = 0; i < 5000; ++i) {
        MicroOp x = a.next();
        MicroOp y = b.next();
        EXPECT_EQ(x.seq, y.seq);
        EXPECT_EQ(x.pc, y.pc);
        EXPECT_EQ(x.op, y.op);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.src1, y.src1);
        EXPECT_EQ(x.src2, y.src2);
        EXPECT_EQ(x.dest, y.dest);
        EXPECT_EQ(x.taken, y.taken);
    }
}

TEST(TraceGenerator, SeqNumbersAreDense)
{
    TraceGenerator g(profileFor("gzip"), 1);
    for (SeqNum i = 0; i < 1000; ++i)
        EXPECT_EQ(g.next().seq, i);
}

TEST(TraceGenerator, MixTracksProfile)
{
    const BenchmarkProfile &p = profileFor("mgrid");
    TraceGenerator g(p, 1);
    unsigned loads = 0, stores = 0, branches = 0;
    const unsigned n = 60000;
    for (unsigned i = 0; i < n; ++i) {
        MicroOp op = g.next();
        loads += op.isLoad();
        stores += op.isStore();
        branches += op.isBranch();
    }
    // Stratified assignment keeps dynamic mixes near targets even in
    // hot loops; allow generous slack for loop-sampling skew.
    EXPECT_NEAR(static_cast<double>(loads) / n, p.loadFrac, 0.10);
    EXPECT_NEAR(static_cast<double>(stores) / n, p.storeFrac, 0.05);
}

TEST(TraceGenerator, StaticProgramIsStable)
{
    // Revisiting a PC must produce the same op class.
    TraceGenerator g(profileFor("gzip"), 3);
    std::map<Pc, OpClass> classes;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = g.next();
        auto it = classes.find(op.pc);
        if (it == classes.end())
            classes[op.pc] = op.op;
        else
            ASSERT_EQ(it->second, op.op) << "pc " << std::hex << op.pc;
    }
    // Loops mean we actually revisited PCs.
    EXPECT_LT(classes.size(), 50000u);
}

TEST(TraceGenerator, LoadsHaveAddressesAndDests)
{
    TraceGenerator g(profileFor("bzip"), 7);
    for (int i = 0; i < 5000; ++i) {
        MicroOp op = g.next();
        if (op.isLoad()) {
            EXPECT_NE(op.addr, 0u);
            EXPECT_TRUE(op.hasDest());
            EXPECT_NE(op.dest, 0);   // never the zero register
        }
        if (op.isStore()) {
            EXPECT_NE(op.addr, 0u);
            EXPECT_FALSE(op.hasDest());
            EXPECT_NE(op.src2, kNoArchReg);   // data register
        }
        if (op.isBranch()) {
            EXPECT_FALSE(op.hasDest());
        }
    }
}

TEST(TraceGenerator, DestRegistersNeverZeroRegs)
{
    TraceGenerator g(profileFor("equake"), 9);
    for (int i = 0; i < 20000; ++i) {
        MicroOp op = g.next();
        if (op.hasDest()) {
            EXPECT_NE(op.dest, 0);
            EXPECT_NE(op.dest, kNumIntArchRegs);   // f0
            EXPECT_LT(op.dest, kNumArchRegs);
        }
    }
}

TEST(TraceGenerator, StoreLoadPairsExist)
{
    // Reloader loads must actually re-read addresses stores wrote.
    TraceGenerator g(profileFor("vortex"), 11);
    std::set<Addr> storeAddrs;
    unsigned reloads = 0, loads = 0;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = g.next();
        if (op.isStore())
            storeAddrs.insert(op.addr);
        if (op.isLoad()) {
            ++loads;
            reloads += storeAddrs.count(op.addr);
        }
    }
    EXPECT_GT(loads, 0u);
    // vortex is alias-heavy: a visible fraction of loads re-read
    // stored addresses.
    EXPECT_GT(static_cast<double>(reloads) / loads, 0.05);
}

TEST(TraceGenerator, SameAddressLoadPairsExist)
{
    TraceGenerator g(profileFor("perl"), 13);
    std::map<Addr, unsigned> loadAddrCount;
    unsigned loads = 0, repeats = 0;
    for (int i = 0; i < 50000; ++i) {
        MicroOp op = g.next();
        if (op.isLoad()) {
            ++loads;
            repeats += loadAddrCount[op.addr]++ ? 1 : 0;
        }
    }
    EXPECT_GT(static_cast<double>(repeats) / loads, 0.02);
}

TEST(TraceGenerator, BranchDensityReasonable)
{
    const BenchmarkProfile &p = profileFor("gcc");
    TraceGenerator g(p, 15);
    unsigned branches = 0;
    const unsigned n = 40000;
    for (unsigned i = 0; i < n; ++i)
        branches += g.next().isBranch();
    EXPECT_NEAR(static_cast<double>(branches) / n, p.branchFrac, 0.08);
}

// -------------------------------------------------- inst stream -------

TEST(InstStream, FetchMatchesGenerator)
{
    InstStream s(profileFor("bzip"), 21);
    TraceGenerator g(profileFor("bzip"), 21);
    for (int i = 0; i < 2000; ++i) {
        const MicroOp &a = s.fetch();
        MicroOp b = g.next();
        EXPECT_EQ(a.seq, b.seq);
        EXPECT_EQ(a.addr, b.addr);
    }
}

TEST(InstStream, SquashReplaysIdentically)
{
    InstStream s(profileFor("bzip"), 23);
    std::vector<MicroOp> first;
    for (int i = 0; i < 100; ++i)
        first.push_back(s.fetch());
    s.squashTo(40);
    for (int i = 40; i < 100; ++i) {
        const MicroOp &op = s.fetch();
        EXPECT_EQ(op.seq, first[i].seq);
        EXPECT_EQ(op.addr, first[i].addr);
        EXPECT_EQ(op.op, first[i].op);
        EXPECT_EQ(op.taken, first[i].taken);
    }
    // Continues into fresh instructions seamlessly.
    EXPECT_EQ(s.fetch().seq, 100u);
}

TEST(InstStream, RetireShrinksWindow)
{
    InstStream s(profileFor("bzip"), 25);
    for (int i = 0; i < 100; ++i)
        s.fetch();
    EXPECT_EQ(s.windowSize(), 100u);
    s.retireUpTo(49);
    EXPECT_EQ(s.windowSize(), 50u);
}

TEST(InstStream, SquashBeforeRetirePointDies)
{
    InstStream s(profileFor("bzip"), 27);
    for (int i = 0; i < 10; ++i)
        s.fetch();
    s.retireUpTo(4);
    EXPECT_DEATH({ s.squashTo(2); }, "commit point");
}

TEST(InstStream, SquashBeyondFetchDies)
{
    InstStream s(profileFor("bzip"), 29);
    for (int i = 0; i < 10; ++i)
        s.fetch();
    EXPECT_DEATH({ s.squashTo(50); }, "not yet fetched");
}

TEST(InstStream, NextSeqTracksCursor)
{
    InstStream s(profileFor("bzip"), 31);
    EXPECT_EQ(s.nextSeq(), 0u);
    s.fetch();
    s.fetch();
    EXPECT_EQ(s.nextSeq(), 2u);
    s.squashTo(1);
    EXPECT_EQ(s.nextSeq(), 1u);
}

TEST(InstStream, RepeatedSquashReplay)
{
    InstStream s(profileFor("gcc"), 33);
    std::vector<Addr> addrs;
    for (int i = 0; i < 50; ++i)
        addrs.push_back(s.fetch().addr);
    for (int round = 0; round < 5; ++round) {
        s.squashTo(10);
        for (int i = 10; i < 50; ++i)
            EXPECT_EQ(s.fetch().addr, addrs[i]);
    }
}

// Property sweep: every benchmark generates a well-formed stream.
class AllBenchmarks : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AllBenchmarks, StreamIsWellFormed)
{
    const BenchmarkProfile &p = profileFor(GetParam());
    TraceGenerator g(p, 99);
    unsigned mem = 0;
    for (int i = 0; i < 20000; ++i) {
        MicroOp op = g.next();
        EXPECT_EQ(op.seq, static_cast<SeqNum>(i));
        EXPECT_GE(op.pc, kCodeBase);
        if (op.isMem()) {
            ++mem;
            EXPECT_EQ(op.addr % 8, 0u);
            EXPECT_NE(op.addr, 0u);
        }
        if (op.src1 != kNoArchReg)
            EXPECT_LT(op.src1, kNumArchRegs);
        if (op.src2 != kNoArchReg)
            EXPECT_LT(op.src2, kNumArchRegs);
    }
    EXPECT_GT(mem, 1000u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, AllBenchmarks,
                         ::testing::ValuesIn(allBenchmarks()));

// ------------------------------------------- statistical properties ---

TEST(TraceGenerator, DepDistanceControlsChainTightness)
{
    // Shorter depDistMean => sources come from nearer producers. Proxy
    // measurement: how often src1 of an arithmetic op equals the dest
    // of one of the previous 4 instructions.
    auto nearSourceRate = [](double mean) {
        BenchmarkProfile p = profileFor("bzip");
        p.depDistMean = mean;
        TraceGenerator g(p, 5);
        std::deque<ArchReg> recent;
        unsigned near = 0, arith = 0;
        for (int i = 0; i < 30000; ++i) {
            MicroOp op = g.next();
            if (!op.isMem() && !op.isBranch()) {
                ++arith;
                for (ArchReg r : recent)
                    if (op.src1 == r) {
                        ++near;
                        break;
                    }
            }
            if (op.hasDest()) {
                recent.push_back(op.dest);
                if (recent.size() > 4)
                    recent.pop_front();
            }
        }
        return static_cast<double>(near) / arith;
    };
    EXPECT_GT(nearSourceRate(2.0), nearSourceRate(20.0) + 0.1);
}

TEST(TraceGenerator, AddrChainProbControlsLoadDependence)
{
    // Chained addresses source from the general producer ring (which
    // includes load destinations: pointer chains); unchained ones
    // source from the short ALU ring. Measure how often a load's
    // address register was recently written by another load.
    auto loadChainedRate = [](double prob) {
        BenchmarkProfile p = profileFor("bzip");
        p.addrChainProb = prob;
        TraceGenerator g(p, 5);
        std::deque<ArchReg> recentLoadDests;
        unsigned chained = 0, loads = 0;
        for (int i = 0; i < 40000; ++i) {
            MicroOp op = g.next();
            if (op.isLoad()) {
                ++loads;
                for (ArchReg r : recentLoadDests)
                    if (op.src1 == r && r != 0) {
                        ++chained;
                        break;
                    }
                recentLoadDests.push_back(op.dest);
                if (recentLoadDests.size() > 8)
                    recentLoadDests.pop_front();
            }
        }
        return static_cast<double>(chained) / loads;
    };
    EXPECT_GT(loadChainedRate(0.95), loadChainedRate(0.05) + 0.1);
}

TEST(BranchModel, TakenRateIsAMix)
{
    // Dynamic branch outcomes are a real mix per benchmark (neither
    // all-taken nor all-not-taken): the predictor has something to do.
    for (const char *bench : {"gcc", "mgrid", "perl"}) {
        TraceGenerator g(profileFor(bench), 5);
        unsigned taken = 0, branches = 0;
        for (int i = 0; i < 60000; ++i) {
            MicroOp op = g.next();
            if (op.isBranch()) {
                ++branches;
                taken += op.taken;
            }
        }
        ASSERT_GT(branches, 100u) << bench;
        double rate = static_cast<double>(taken) / branches;
        EXPECT_GT(rate, 0.05) << bench;
        EXPECT_LT(rate, 0.95) << bench;
    }
}
